"""Synthetic microbenchmarks isolating one microarchitectural behaviour.

These are not part of the paper's 26-benchmark suite; they serve
protocol studies, ablations, and validation (the paper's authors used
microbenchmarks the same way to validate the simulator and power model
against the TRIPS prototype, section 5).  Each returns
``(KernelProgram, expected)`` like the suite factories.
"""

from __future__ import annotations

from repro.compiler import (
    Array, Assign, Bin, Cmp, Const, For, Function, If, KernelProgram, Load,
    Store, Var,
)
from repro.workloads.data import Lcg


def pointer_chase(length: int = 64, hops: int = 128):
    """Serial dependent loads: every load's address comes from the
    previous load (memory-latency bound; zero MLP)."""
    rng = Lcg(211)
    # A random cycle over the nodes guarantees `hops` distinct steps.
    order = list(range(1, length))
    for i in range(len(order) - 1, 0, -1):
        j = rng.next() % (i + 1)
        order[i], order[j] = order[j], order[i]
    nodes = [0] * length
    prev = 0
    for node in order:
        nodes[prev] = node
        prev = node
    nodes[prev] = 0
    kernel = KernelProgram(
        name="pointer_chase",
        arrays=[Array("next", "int", length, nodes), Array("out", "int", 1)],
        functions=[Function("main", body=[
            Assign("p", Const(0)),
            For("i", Const(0), Const(hops), body=[
                Assign("p", Load("next", Var("p"))),
            ]),
            Store("out", Const(0), Var("p")),
        ])])
    p = 0
    for __ in range(hops):
        p = nodes[p]
    return kernel, {"out": [p]}


def branch_random(n: int = 128, seed: int = 223):
    """Data-dependent unpredictable branches (misprediction bound)."""
    rng = Lcg(seed)
    data = rng.ints(n, 0, 1)
    kernel = KernelProgram(
        name="branch_random",
        arrays=[Array("bits", "int", n, data), Array("out", "int", 1)],
        functions=[Function("main", body=[
            Assign("acc", Const(0)),
            For("i", Const(0), Const(n), body=[
                If(Cmp("==", Load("bits", Var("i")), Const(1)), then=[
                    Assign("acc", Bin("+", Var("acc"), Const(3))),
                ], else_=[
                    Assign("acc", Bin("-", Var("acc"), Const(1))),
                ]),
            ]),
            Store("out", Const(0), Var("acc")),
        ])])
    acc = sum(3 if b else -1 for b in data)
    return kernel, {"out": [acc]}


def memory_stream(n: int = 256):
    """Unit-stride streaming read-modify-write (bandwidth bound)."""
    rng = Lcg(227)
    data = rng.ints(n, 0, 1000)
    kernel = KernelProgram(
        name="memory_stream",
        arrays=[Array("a", "int", n, data), Array("b", "int", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=8, body=[
                Store("b", Var("i"), Bin("+", Load("a", Var("i")), Const(1))),
            ]),
        ])])
    return kernel, {"b": [v + 1 for v in data]}


def alu_chain(length: int = 256):
    """One long serial ALU dependence chain (pure latency bound;
    composition cannot help — the anti-scaling control)."""
    kernel = KernelProgram(
        name="alu_chain",
        arrays=[Array("out", "int", 1)],
        functions=[Function("main", body=[
            Assign("v", Const(1)),
            For("i", Const(0), Const(length), unroll=8, body=[
                Assign("v", Bin("^", Bin("*", Var("v"), Const(3)), Const(17))),
            ]),
            Store("out", Const(0), Var("v")),
        ])])
    from repro.util import wrap64
    v = 1
    for __ in range(length):
        v = wrap64(v * 3) ^ 17
    return kernel, {"out": [v]}


def fanout_tree(width: int = 24, rounds: int = 16):
    """Wide independent dataflow (ILP bound; the pro-scaling control)."""
    kernel_body = [Assign("s", Const(0))]
    for w in range(width):
        kernel_body.append(Assign(f"v{w}", Const(w + 1)))
    loop_body = []
    for w in range(width):
        loop_body.append(Assign(f"v{w}", Bin("+", Bin("*", Var(f"v{w}"),
                                                      Const(3)), Const(w))))
    kernel_body.append(For("i", Const(0), Const(rounds), body=loop_body))
    for w in range(width):
        kernel_body.append(Assign("s", Bin("^", Var("s"), Var(f"v{w}"))))
    kernel_body.append(Store("out", Const(0), Var("s")))
    kernel = KernelProgram(
        name="fanout_tree",
        arrays=[Array("out", "int", 1)],
        functions=[Function("main", body=kernel_body)])

    from repro.util import wrap64
    values = [w + 1 for w in range(width)]
    for __ in range(rounds):
        values = [wrap64(v * 3 + w) for w, v in enumerate(values)]
    s = 0
    for v in values:
        s ^= v
    return kernel, {"out": [wrap64(s)]}


MICROBENCHMARKS = {
    "pointer_chase": pointer_chase,
    "branch_random": branch_random,
    "memory_stream": memory_stream,
    "alu_chain": alu_chain,
    "fanout_tree": fanout_tree,
}
