"""Activity-based (Wattch-style) energy model (paper section 6.3).

Dynamic energy is counted per structure access from the simulator's
activity counters; clock-tree energy is charged per cycle per powered
core (the TRIPS prototype had no clock gating, and the paper's
comparison deliberately excludes it); leakage is area-proportional and
lands at the paper's 8-10% of total power for typical runs.

Absolute joules are calibrated to plausible 130 nm / 1.5 V magnitudes,
but — as in the paper — only *relative* power across configurations is
meaningful; figure 8 plots performance²/W ratios.

The paper's power observation about the baseline falls out naturally:
at equal issue width, TRIPS clocks 16 single-issue tiles (16 FPUs)
where TFlex clocks 8 dual-issue cores (8 FPUs), so the idle-FPU clock
burden roughly doubles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


#: Nanojoules per access, 130 nm / 1.5 V.
DEFAULT_EVENT_NJ: dict[str, float] = {
    "alu_op": 0.045,
    "fpu_op": 0.45,
    "regfile_read": 0.03,
    "regfile_write": 0.035,
    "commit_write": 0.02,
    "window_write": 0.02,
    "icache_access": 0.09,
    "icache_tag": 0.02,
    "predictor_access": 0.05,
    "dcache_read": 0.11,
    "dcache_write": 0.13,
    "lsq_search": 0.08,
    "opn_msg": 0.01,
    "opn_hop": 0.03,
    "control_msg": 0.005,
    "control_hop": 0.015,
    "l2_access": 0.9,
    "lsq_overflow_flush": 0.0,
    "bad_address": 0.0,
}

#: Category -> contributing event counters (Table 2's power breakdown).
CATEGORIES: dict[str, tuple[str, ...]] = {
    "fetch": ("icache_access", "icache_tag", "predictor_access"),
    "execution": ("alu_op", "fpu_op", "window_write", "regfile_read",
                  "regfile_write", "commit_write"),
    "dcache": ("dcache_read", "dcache_write", "lsq_search"),
    "routers": ("opn_msg", "opn_hop", "control_msg", "control_hop"),
    "l2": ("l2_access",),
}


@dataclass(frozen=True)
class EnergyParams:
    """Calibration constants of the energy model."""

    event_nj: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_EVENT_NJ))
    #: Clock-tree energy per cycle per powered core: base pipeline
    #: latches plus the FPU's latch share (idle FPUs still clock).
    clock_core_nj: float = 0.35
    clock_fpu_nj: float = 0.18
    #: DRAM/IO energy per main-memory request.
    dram_nj: float = 12.0
    #: Leakage power per powered core (area-proportional, ~8-10% of
    #: typical total power at 130 nm).
    leakage_core_w: float = 0.02
    #: TRIPS prototype clock.
    frequency_hz: float = 366e6

    @staticmethod
    def trips() -> "EnergyParams":
        """Parameters for the TRIPS baseline's tiles.

        A single-issue TRIPS execution tile carries roughly half the
        pipeline latch count (and half the leakage area) of a dual-issue
        TFlex core, but a full FPU; with 16 tiles matching 8 TFlex cores
        in area/issue width, the chip-level clock power comes out higher
        — the paper's idle-FPU observation (section 6.3)."""
        return EnergyParams(clock_core_nj=0.18, leakage_core_w=0.01)


@dataclass
class PowerBreakdown:
    """Average power by category over one run (Table 2, power half)."""

    watts: dict[str, float]
    cycles: int
    num_cores: int

    @property
    def total(self) -> float:
        return sum(self.watts.values())

    def to_dict(self) -> dict:
        return {"watts": dict(self.watts), "cycles": self.cycles,
                "num_cores": self.num_cores}

    @staticmethod
    def from_dict(data: dict) -> "PowerBreakdown":
        return PowerBreakdown(watts=dict(data["watts"]),
                              cycles=data["cycles"],
                              num_cores=data["num_cores"])

    def table(self) -> str:
        lines = [f"Average power over {self.cycles} cycles on {self.num_cores} cores (W):"]
        for name, value in self.watts.items():
            lines.append(f"  {name:12s} {value:7.3f}")
        lines.append(f"  {'total':12s} {self.total:7.3f}")
        return "\n".join(lines)


class EnergyModel:
    """Computes energy/power from simulator activity counters."""

    def __init__(self, params: Optional[EnergyParams] = None) -> None:
        self.params = params if params is not None else EnergyParams()

    def breakdown(self, energy_events, cycles: int, num_cores: int,
                  dram_requests: int = 0,
                  fpus_per_core: int = 1) -> PowerBreakdown:
        """Average power by category.

        Args:
            energy_events: Counter of activity events (ProcStats.energy_events).
            cycles: Run length in cycles.
            num_cores: Powered (participating) cores.
            dram_requests: Main-memory accesses during the run.
            fpus_per_core: 1 for TFlex cores and TRIPS tiles; the TRIPS
                delta comes from tile count at equal issue width.
        """
        params = self.params
        seconds = max(cycles, 1) / params.frequency_hz
        watts: dict[str, float] = {}
        for category, events in CATEGORIES.items():
            joules = sum(energy_events.get(e, 0) * params.event_nj[e] * 1e-9
                         for e in events)
            watts[category] = joules / seconds
        watts["dram/io"] = dram_requests * params.dram_nj * 1e-9 / seconds
        clock_nj = params.clock_core_nj + fpus_per_core * params.clock_fpu_nj
        watts["clock"] = (clock_nj * 1e-9 * num_cores * cycles) / seconds
        watts["leakage"] = params.leakage_core_w * num_cores
        return PowerBreakdown(watts=watts, cycles=cycles, num_cores=num_cores)

    def run_power(self, proc, system) -> PowerBreakdown:
        """Breakdown for one completed single-processor run."""
        return self.breakdown(
            proc.stats.energy_events,
            cycles=proc.stats.cycles,
            num_cores=proc.ncores,
            dram_requests=system.dram.stats.requests,
        )

    @staticmethod
    def perf2_per_watt(cycles: int, watts: float) -> float:
        """Figure 8 metric: performance² per watt (inverse energy-delay²
        up to constants)."""
        return (1.0 / cycles) ** 2 / watts
