"""Component-level area model (paper section 6.2, Table 2).

Areas are per-component mm² for one TFlex core at 130 nm, calibrated to
the paper's anchors: an 18 mm x 18 mm die holds 8 TFlex cores plus
1.5 MB of L2, and an 8-core TFlex processor matches the TRIPS processor
in area and issue width.  Figure 7 uses only *relative* processor areas
(performance / (cycles x mm²)), which these anchors pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: mm² per component of one TFlex core (130 nm, post-synthesis scale).
CORE_COMPONENT_AREAS: dict[str, float] = {
    "register file": 1.2,
    "instruction cache": 1.8,
    "data cache": 2.2,
    "load/store queue": 1.6,
    "block predictor": 0.9,
    "instruction window + INT": 4.5,
    "floating-point unit": 5.5,
    "operand/control routers": 1.8,
    "block control": 2.0,
    "clock + global wiring": 3.5,
}

#: mm² per megabyte of L2 at 130 nm.
L2_MM2_PER_MB = 22.0


@dataclass(frozen=True)
class AreaModel:
    """Processor- and chip-level areas derived from the component table."""

    components: dict[str, float] = field(
        default_factory=lambda: dict(CORE_COMPONENT_AREAS))

    @property
    def core_mm2(self) -> float:
        """One TFlex core."""
        return sum(self.components.values())

    def processor_mm2(self, num_cores: int) -> float:
        """A composed processor of N cores."""
        return num_cores * self.core_mm2

    @property
    def trips_mm2(self) -> float:
        """The TRIPS processor: same area as 8 TFlex cores (paper 6.1)."""
        return self.processor_mm2(8)

    def l2_mm2(self, megabytes: float) -> float:
        return megabytes * L2_MM2_PER_MB

    def chip_mm2(self, num_cores: int = 32, l2_megabytes: float = 4.0) -> float:
        """Whole-chip area (core array + L2)."""
        return self.processor_mm2(num_cores) + self.l2_mm2(l2_megabytes)

    def perf_per_area(self, cycles: int, num_cores: int) -> float:
        """Figure 7 metric: 1 / (cycles x mm²)."""
        return 1.0 / (cycles * self.processor_mm2(num_cores))

    def trips_perf_per_area(self, cycles: int) -> float:
        return 1.0 / (cycles * self.trips_mm2)

    def table(self) -> str:
        """Human-readable component table (Table 2, area half)."""
        lines = ["Component areas per TFlex core (mm^2, 130 nm):"]
        for name, mm2 in self.components.items():
            lines.append(f"  {name:28s} {mm2:6.2f}")
        lines.append(f"  {'core total':28s} {self.core_mm2:6.2f}")
        lines.append(f"  8-core TFlex processor        {self.processor_mm2(8):6.2f}")
        lines.append(f"  TRIPS processor (same area)   {self.trips_mm2:6.2f}")
        lines.append(f"  32-core chip + 4MB L2         {self.chip_mm2():6.2f}")
        return "\n".join(lines)
