"""Area and power models (paper sections 6.2, 6.3; Table 2).

Relative models at the 130 nm / 1.5 V / 366 MHz TRIPS prototype point:
figure 7 needs performance *per area* and figure 8 performance-squared
*per watt*, so only the relative magnitudes across configurations
matter, as in the paper (which limits power comparisons to 130 nm for
the same reason).
"""

from repro.power.area import AreaModel, CORE_COMPONENT_AREAS
from repro.power.energy import EnergyModel, EnergyParams, PowerBreakdown

__all__ = [
    "AreaModel",
    "CORE_COMPONENT_AREAS",
    "EnergyModel",
    "EnergyParams",
    "PowerBreakdown",
]
