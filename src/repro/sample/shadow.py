"""Lightweight shadow microarchitecture warmed during fast-forward.

While the interpreter fast-forwards between detailed windows, the
long-lived microarchitectural structures — predictor tables, RAS,
I-caches, D-cache banks, and the shared L2 — must keep learning, or
every window would start from a cold machine and bias the sampled IPC
low.  :class:`ShadowUarch` is a functional twin of those structures: it
reuses the *same* classes the cycle simulator uses (``PredictorBank``,
``CacheBank``, ``L2System``) and the same interleaving hash functions
(:mod:`repro.tflex.interleave`), driven once per committed block in
program order, ignoring all timing results.

State moves between the shadow and a real :class:`TFlexSystem` through
the structures' ``state_dict``/``load_state`` and
``export_lines``/``import_lines`` APIs; the L2 directory is rebuilt
from L1 contents on every transfer (the directory's invariant is
"entry == some L1 holds the line", so it is derived state).

Fidelity notes: the shadow trains the predictor strictly in commit
order, so wrong-path pollution from deep speculation is not modelled;
caches track presence/MSI only (as in the simulator), so this warms
*timing* state and cannot perturb architectural results.
"""

from __future__ import annotations

from repro.isa.program import BLOCK_STRIDE
from repro.mem.cache import CacheBank, LineState
from repro.mem.dram import Dram
from repro.mem.flatmem import FlatMemory
from repro.mem.l2 import L2System
from repro.noc import Topology
from repro.predictor import DistributedRas, PredictorBank
from repro.predictor.exits import GLOBAL_HISTORY_EXITS, push_history
from repro.predictor.targets import BranchKind
from repro.tflex import interleave
from repro.tflex.config import SystemConfig


class RecordingMemory(FlatMemory):
    """Flat memory that can log load addresses for cache warming.

    Recording is switched on only around fast-forward block execution;
    detailed windows share the same memory object with recording off,
    so the cycle simulator's own cache model is undisturbed.  Loads
    satisfied by in-block store forwarding never reach :meth:`load`,
    matching the LSQ-forward path that bypasses the D-cache.
    """

    def __init__(self) -> None:
        super().__init__()
        self.recording = False
        self.load_addrs: list[int] = []

    def load(self, addr: int, size: int, fp: bool = False):
        if self.recording:
            self.load_addrs.append(addr)
        return super().load(addr, size, fp=fp)


def rebuild_directory(l2: L2System, l1_by_core: dict) -> None:
    """Derive the L2 directory from L1 contents after a state transfer.

    ``l1_by_core`` maps a core ID (global for the real system,
    participating index for the shadow) to the L1 banks resident on
    that core.  A MODIFIED line makes the core its owner; anything else
    a sharer — exactly the invariant the live protocol maintains.
    """
    l2.directory.clear()
    for core_id, banks in l1_by_core.items():
        for bank in banks:
            for line in bank.iter_lines():
                entry = l2._dir_entry(line.ctx, line.line_addr)
                if line.state is LineState.MODIFIED:
                    entry.owner = core_id
                else:
                    entry.sharers.add(core_id)


class ShadowUarch:
    """Functional twins of a composition's warm structures.

    Everything is indexed by *participating core index* (0..ncores-1);
    the engine maps to global core IDs when moving state to/from a real
    system.
    """

    def __init__(self, cfg: SystemConfig, ncores: int, ctx: int = 0) -> None:
        self.cfg = cfg
        self.ncores = ncores
        self.ctx = ctx
        self.line_size = cfg.line_size
        core = cfg.core

        max_inflight = cfg.max_inflight if cfg.max_inflight is not None else ncores
        self.speculative = max(1, max_inflight) > 1

        num_pred = 1 if cfg.centralized_predictor else ncores
        self.pred_banks = [
            PredictorBank(
                local_l1=core.local_l1, local_l2=core.local_l2,
                global_entries=core.global_entries,
                choice_entries=core.choice_entries,
                btype_entries=core.btype_entries, btb_entries=core.btb_entries,
                ctb_entries=core.ctb_entries, latency=core.predictor_latency)
            for __ in range(num_pred)
        ]
        self.ras = DistributedRas(num_pred, core.ras_entries)

        self.icaches = [
            CacheBank(core.icache_bytes, core.icache_assoc, cfg.line_size,
                      name=f"shadow.i{i}")
            for i in range(ncores)
        ]
        self.num_dbanks = interleave.num_dbanks_of(ncores, cfg.dcache_banks)
        self.dcaches = [
            CacheBank(core.dcache_bytes, core.dcache_assoc, cfg.line_size,
                      name=f"shadow.d{b}")
            for b in range(self.num_dbanks)
        ]
        self._dbank_core = [
            interleave.dbank_core_index(b, ncores, self.num_dbanks)
            for b in range(self.num_dbanks)
        ]
        dmap = {core_index: self.dcaches[b]
                for b, core_index in enumerate(self._dbank_core)}
        self.l2 = L2System(
            Topology(cfg.mesh_width, cfg.mesh_height), num_banks=cfg.l2_banks,
            bank_bytes=cfg.l2_bank_bytes, assoc=cfg.l2_assoc,
            line_size=cfg.line_size, tag_latency=cfg.l2_tag_latency,
            l1_banks=dmap.get, dram=Dram())

        # Participating core index -> L1 banks there (directory rebuilds).
        self._l1_by_core: dict[int, list[CacheBank]] = {
            i: [self.icaches[i]] for i in range(ncores)}
        for b, core_index in enumerate(self._dbank_core):
            self._l1_by_core[core_index].append(self.dcaches[b])

        # Block size -> ((core_index, icache_lines), ...), the per-core
        # I-cache footprint (depends only on size and the composition).
        self._ic_lines: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Warming
    # ------------------------------------------------------------------

    def _icache_footprint(self, size: int) -> tuple:
        cached = self._ic_lines.get(size)
        if cached is None:
            ncores = self.ncores
            line = self.line_size
            cached = tuple(
                (i, max(1, -(-chunk * 4 // line)))
                for i in range(ncores)
                if (chunk := (size - i + ncores - 1) // ncores) > 0)
            self._ic_lines[size] = cached
        return cached

    def observe(self, block, addr: int, ghist: int, outcome,
                load_addrs: list[int]) -> int:
        """Warm all structures with one committed block; returns the
        global exit history after the block."""
        ctx = self.ctx
        actual_exit = outcome.exit_id
        actual_next = outcome.next_addr

        # Next-block predictor: predict, repair on a wrong path (the
        # same sequence as ``ProtocolMixin._mispredict``), then train.
        if self.speculative:
            owner = interleave.owner_index_of(addr, self.ncores,
                                              self.cfg.centralized_predictor)
            bank = self.pred_banks[owner]
            prediction = bank.predict(addr, ghist, self.ras)
            actual_kind = BranchKind.of_opcode(outcome.branch_op)
            if prediction.next_addr != actual_next:
                bank.exits.repair(prediction.checkpoint.exit_prediction,
                                  actual_exit=actual_exit)
                if prediction.checkpoint.ras_checkpoint is not None:
                    self.ras.restore(prediction.checkpoint.ras_checkpoint)
                    prediction.checkpoint.ras_checkpoint = None
                if actual_kind is BranchKind.CALL:
                    prediction.checkpoint.ras_checkpoint = self.ras.push(
                        addr + BLOCK_STRIDE)
                elif actual_kind is BranchKind.RETURN:
                    __, cp = self.ras.pop()
                    prediction.checkpoint.ras_checkpoint = cp
                next_ghist = push_history(ghist, actual_exit,
                                          GLOBAL_HISTORY_EXITS)
            else:
                next_ghist = prediction.next_global_history
            bank.update(prediction, actual_exit, actual_kind, actual_next)
        else:
            next_ghist = push_history(ghist, actual_exit, GLOBAL_HISTORY_EXITS)

        # I-cache: each core's slice occupies its own lines keyed from
        # the block base address (per-core private footprint).
        l2 = self.l2
        for core_index, lines in self._icache_footprint(block.size):
            icache = self.icaches[core_index]
            for line_no in range(lines):
                line_addr = addr + line_no * self.line_size
                if not icache.access(ctx, line_addr):
                    __, state = l2.read(ctx, line_addr, core_index, 0)
                    icache.fill(ctx, line_addr, state)

        # D-cache: loads that went to memory (LSQ forwards never reach
        # the recording memory), then committed stores via the same
        # probe/upgrade/allocate sequence as the commit drain.
        for laddr in load_addrs:
            b = interleave.dbank_of(laddr, self.line_size, self.num_dbanks)
            dcache = self.dcaches[b]
            if not dcache.access(ctx, laddr):
                bank_core = self._dbank_core[b]
                __, state = l2.read(ctx, laddr, bank_core, 0)
                victim = dcache.fill(ctx, laddr, state)
                if victim is not None:
                    l2.l1_evicted(victim.ctx, victim.line_addr, bank_core)
        for __lsq, saddr, __size, __value, __fp in outcome.stores:
            b = interleave.dbank_of(saddr, self.line_size, self.num_dbanks)
            dcache = self.dcaches[b]
            line = dcache.probe(ctx, saddr)
            if line is not None and line.state is LineState.MODIFIED:
                dcache.access(ctx, saddr, write=True)
                continue
            bank_core = self._dbank_core[b]
            __, state = l2.write(ctx, saddr, bank_core, 0)
            victim = dcache.fill(ctx, saddr, state)
            if victim is not None:
                l2.l1_evicted(victim.ctx, victim.line_addr, bank_core)
            dcache.access(ctx, saddr, write=True)

        return next_ghist

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------

    def rebuild_directory(self) -> None:
        rebuild_directory(self.l2, self._l1_by_core)

    def state_dict(self) -> dict:
        """JSON-safe snapshot of every warm structure (directory
        excluded — it is rebuilt from L1 contents on load)."""
        return {
            "pred": [bank.state_dict() for bank in self.pred_banks],
            "ras": self.ras.state_dict(),
            "icache": [bank.export_lines() for bank in self.icaches],
            "dcache": [bank.export_lines() for bank in self.dcaches],
            "l2": [bank.export_lines() for bank in self.l2.banks],
        }

    def load_state(self, state: dict) -> None:
        if len(state["pred"]) != len(self.pred_banks) \
                or len(state["icache"]) != len(self.icaches) \
                or len(state["dcache"]) != len(self.dcaches) \
                or len(state["l2"]) != len(self.l2.banks):
            raise ValueError("shadow snapshot geometry mismatch")
        for bank, snapshot in zip(self.pred_banks, state["pred"]):
            bank.load_state(snapshot)
        self.ras.load_state(state["ras"])
        for bank, lines in zip(self.icaches, state["icache"]):
            bank.import_lines(lines)
        for bank, lines in zip(self.dcaches, state["dcache"]):
            bank.import_lines(lines)
        for bank, lines in zip(self.l2.banks, state["l2"]):
            bank.import_lines(lines)
        self.rebuild_directory()
