"""Lightweight shadow microarchitecture warmed during fast-forward.

While the interpreter fast-forwards between detailed windows, the
long-lived microarchitectural structures — predictor tables, RAS,
I-caches, D-cache banks, and the shared L2 — must keep learning, or
every window would start from a cold machine and bias the sampled IPC
low.  :class:`ShadowUarch` is a functional twin of those structures: it
reuses the *same* classes the cycle simulator uses (``PredictorBank``,
``CacheBank``, ``L2System``) and the same interleaving hash functions
(:mod:`repro.tflex.interleave`), driven once per committed block in
program order, ignoring all timing results.

State moves between the shadow and a real :class:`TFlexSystem` through
the structures' ``state_dict``/``load_state`` and
``export_lines``/``import_lines`` APIs; the L2 directory is rebuilt
from L1 contents on every transfer (the directory's invariant is
"entry == some L1 holds the line", so it is derived state).

Fidelity notes: the shadow trains the predictor strictly in commit
order, so wrong-path pollution from deep speculation is not modelled;
caches track presence/MSI only (as in the simulator), so this warms
*timing* state and cannot perturb architectural results.
"""

from __future__ import annotations

from repro.isa.program import BLOCK_STRIDE
from repro.mem.cache import CacheBank, LineState
from repro.mem.dram import Dram
from repro.mem.flatmem import FlatMemory
from repro.mem.l2 import L2System
from repro.noc import Topology
from repro.predictor import DistributedRas, PredictorBank
from repro.predictor.exits import GLOBAL_HISTORY_EXITS, push_history
from repro.predictor.targets import BranchKind
from repro.tflex import interleave
from repro.tflex.config import SystemConfig


class RecordingMemory(FlatMemory):
    """Flat memory that can log load addresses for cache warming.

    Recording is switched on only around fast-forward block execution;
    detailed windows share the same memory object with recording off,
    so the cycle simulator's own cache model is undisturbed.  Loads
    satisfied by in-block store forwarding never reach :meth:`load`,
    matching the LSQ-forward path that bypasses the D-cache.
    """

    def __init__(self) -> None:
        super().__init__()
        self.recording = False
        self.load_addrs: list[int] = []

    def load(self, addr: int, size: int, fp: bool = False):
        if self.recording:
            self.load_addrs.append(addr)
        return super().load(addr, size, fp=fp)


def rebuild_directory(l2: L2System, l1_by_core: dict) -> None:
    """Derive the L2 directory from L1 contents after a state transfer.

    ``l1_by_core`` maps a core ID (global for the real system,
    participating index for the shadow) to the L1 banks resident on
    that core.  A MODIFIED line makes the core its owner; anything else
    a sharer — exactly the invariant the live protocol maintains.
    """
    l2.directory.clear()
    for core_id, banks in l1_by_core.items():
        for bank in banks:
            for line in bank.iter_lines():
                entry = l2._dir_entry(line.ctx, line.line_addr)
                if line.state is LineState.MODIFIED:
                    entry.owner = core_id
                else:
                    entry.sharers.add(core_id)


class ShadowUarch:
    """Functional twins of a composition's warm structures.

    Everything is indexed by *participating core index* (0..ncores-1);
    the engine maps to global core IDs when moving state to/from a real
    system.
    """

    def __init__(self, cfg: SystemConfig, ncores: int, ctx: int = 0) -> None:
        self.cfg = cfg
        self.ncores = ncores
        self.ctx = ctx
        self.line_size = cfg.line_size
        core = cfg.core

        max_inflight = cfg.max_inflight if cfg.max_inflight is not None else ncores
        self.speculative = max(1, max_inflight) > 1

        num_pred = 1 if cfg.centralized_predictor else ncores
        self.pred_banks = [
            PredictorBank(
                local_l1=core.local_l1, local_l2=core.local_l2,
                global_entries=core.global_entries,
                choice_entries=core.choice_entries,
                btype_entries=core.btype_entries, btb_entries=core.btb_entries,
                ctb_entries=core.ctb_entries, latency=core.predictor_latency)
            for __ in range(num_pred)
        ]
        self.ras = DistributedRas(num_pred, core.ras_entries)

        self.icaches = [
            CacheBank(core.icache_bytes, core.icache_assoc, cfg.line_size,
                      name=f"shadow.i{i}")
            for i in range(ncores)
        ]
        self.num_dbanks = interleave.num_dbanks_of(ncores, cfg.dcache_banks)
        self.dcaches = [
            CacheBank(core.dcache_bytes, core.dcache_assoc, cfg.line_size,
                      name=f"shadow.d{b}")
            for b in range(self.num_dbanks)
        ]
        # lint: ok(REP101) pure function of the composition geometry
        self._dbank_core = [
            interleave.dbank_core_index(b, ncores, self.num_dbanks)
            for b in range(self.num_dbanks)
        ]
        dmap = {core_index: self.dcaches[b]
                for b, core_index in enumerate(self._dbank_core)}
        self.l2 = L2System(
            Topology(cfg.mesh_width, cfg.mesh_height), num_banks=cfg.l2_banks,
            bank_bytes=cfg.l2_bank_bytes, assoc=cfg.l2_assoc,
            line_size=cfg.line_size, tag_latency=cfg.l2_tag_latency,
            l1_banks=dmap.get, dram=Dram())

        # Participating core index -> L1 banks there (directory rebuilds).
        # lint: ok(REP101) index over icaches/dcaches, which the surface covers
        self._l1_by_core: dict[int, list[CacheBank]] = {
            i: [self.icaches[i]] for i in range(ncores)}
        for b, core_index in enumerate(self._dbank_core):
            self._l1_by_core[core_index].append(self.dcaches[b])

        # Block size -> ((core_index, icache_lines), ...), the per-core
        # I-cache footprint (depends only on size and the composition).
        self._ic_lines: dict[int, tuple] = {}  # lint: ok(REP101) memo cache, rebuilt on demand
        # Block size -> ((core_index, byte_offset), ...), the same
        # footprint flattened to one pair per touched line for the
        # ``observe`` hot loop.
        self._ic_flat: dict[int, tuple] = {}  # lint: ok(REP101) memo cache, rebuilt on demand

    # ------------------------------------------------------------------
    # Warming
    # ------------------------------------------------------------------

    def _icache_footprint(self, size: int) -> tuple:
        cached = self._ic_lines.get(size)
        if cached is None:
            ncores = self.ncores
            line = self.line_size
            cached = tuple(
                (i, max(1, -(-chunk * 4 // line)))
                for i in range(ncores)
                if (chunk := (size - i + ncores - 1) // ncores) > 0)
            self._ic_lines[size] = cached
        return cached

    def _icache_flat(self, size: int) -> tuple:
        cached = self._ic_flat.get(size)
        if cached is None:
            line = self.line_size
            cached = tuple(
                (core_index, line_no * line)
                for core_index, lines in self._icache_footprint(size)
                for line_no in range(lines))
            self._ic_flat[size] = cached
        return cached

    def observe(self, block, addr: int, ghist: int, outcome,
                load_addrs: list[int]) -> int:
        """Warm all structures with one committed block; returns the
        global exit history after the block."""
        ctx = self.ctx
        actual_exit = outcome.exit_id
        actual_next = outcome.next_addr

        # Next-block predictor: the fused commit-order step — identical
        # table/RAS state to predict, repair-on-wrong-path (the same
        # sequence as ``ProtocolMixin._mispredict``), then train.
        if self.speculative:
            owner = 0 if self.cfg.centralized_predictor \
                else (addr // BLOCK_STRIDE) % self.ncores
            next_ghist = self.pred_banks[owner].observe_commit(
                addr, ghist, self.ras, actual_exit,
                BranchKind.of_opcode(outcome.branch_op), actual_next)
        else:
            next_ghist = push_history(ghist, actual_exit, GLOBAL_HISTORY_EXITS)

        # The cache loops below run once per committed block for the
        # whole fast-forward region — the hottest code in sampled
        # simulation.  The hit path is open-coded against CacheBank's
        # set layout (one hashed ``move_to_end`` doubling as lookup and
        # LRU touch, no per-access stats — nothing reads shadow stats,
        # and ``export_lines`` carries only resident state); misses
        # fall back to the exact protocol sequence ``CacheBank.access``
        # callers use, so warm state is bit-identical to the plain
        # path.
        l2 = self.l2
        line_size = self.line_size
        mask = ~(line_size - 1)
        modified = LineState.MODIFIED
        shared = LineState.SHARED
        num_dbanks = self.num_dbanks
        dcaches = self.dcaches
        dbank_core = self._dbank_core
        icaches = self.icaches

        # I-cache: each core's slice occupies its own lines keyed from
        # the block base address (per-core private footprint).
        for core_index, off in self._icache_flat(block.size):
            icache = icaches[core_index]
            la = (addr + off) & mask
            try:
                icache._sets[(la // line_size) % icache.num_sets] \
                    .move_to_end((ctx, la))
            except KeyError:
                l2.warm_read(ctx, la, core_index)
                icache.fill(ctx, la, shared)

        # D-cache: loads that went to memory (LSQ forwards never reach
        # the recording memory), then committed stores via the same
        # probe/upgrade/allocate sequence as the commit drain.  The
        # bank hash is ``interleave.dbank_of``, inlined.
        for laddr in load_addrs:
            line = laddr // line_size
            b = (line ^ (line >> 5) ^ (line >> 10)) % num_dbanks
            dcache = dcaches[b]
            la = laddr & mask
            try:
                dcache._sets[(la // line_size) % dcache.num_sets] \
                    .move_to_end((ctx, la))
            except KeyError:
                bank_core = dbank_core[b]
                l2.warm_read(ctx, la, bank_core)
                victim = dcache.fill(ctx, la, shared)
                if victim is not None:
                    l2.l1_evicted(victim.ctx, victim.line_addr, bank_core)
        for __lsq, saddr, __size, __value, __fp in outcome.stores:
            line = saddr // line_size
            b = (line ^ (line >> 5) ^ (line >> 10)) % num_dbanks
            dcache = dcaches[b]
            la = saddr & mask
            cache_set = dcache._sets[(la // line_size) % dcache.num_sets]
            line = cache_set.get((ctx, la))
            if line is not None and line.state is modified:
                cache_set.move_to_end((ctx, la))
                continue
            bank_core = dbank_core[b]
            l2.warm_write(ctx, la, bank_core)
            victim = dcache.fill(ctx, saddr, modified)
            if victim is not None:
                l2.l1_evicted(victim.ctx, victim.line_addr, bank_core)

        return next_ghist

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------

    def rebuild_directory(self) -> None:
        rebuild_directory(self.l2, self._l1_by_core)

    def state_dict(self) -> dict:
        """JSON-safe snapshot of every warm structure (directory
        excluded — it is rebuilt from L1 contents on load)."""
        return {
            "pred": [bank.state_dict() for bank in self.pred_banks],
            "ras": self.ras.state_dict(),
            "icache": [bank.export_lines() for bank in self.icaches],
            "dcache": [bank.export_lines() for bank in self.dcaches],
            "l2": [bank.export_lines() for bank in self.l2.banks],
        }

    def load_state(self, state: dict) -> None:
        if len(state["pred"]) != len(self.pred_banks) \
                or len(state["icache"]) != len(self.icaches) \
                or len(state["dcache"]) != len(self.dcaches) \
                or len(state["l2"]) != len(self.l2.banks):
            raise ValueError("shadow snapshot geometry mismatch")
        for bank, snapshot in zip(self.pred_banks, state["pred"]):
            bank.load_state(snapshot)
        self.ras.load_state(state["ras"])
        for bank, lines in zip(self.icaches, state["icache"]):
            bank.import_lines(lines)
        for bank, lines in zip(self.dcaches, state["dcache"]):
            bank.import_lines(lines)
        for bank, lines in zip(self.l2.banks, state["l2"]):
            bank.import_lines(lines)
        self.rebuild_directory()
