"""Sampled simulation: interpreter fast-forward + detailed windows.

A sampled run executes the program's full dynamic block stream exactly
once, alternating two regimes:

* **Detailed windows** run on a real :class:`TFlexSystem` with the
  architectural state (registers, memory) and warm microarchitectural
  state (predictor, RAS, I/D caches, L2) injected at entry.  Each
  window commits ``warmup_blocks`` blocks unmeasured, then measures
  IPC over ``window_blocks`` committed blocks, then halts through the
  processor's ``commit_limit``.

* **Fast-forward intervals** execute ``ff_blocks`` blocks on the
  golden-model interpreter, warming the :class:`ShadowUarch` per
  committed block.

Because both regimes execute every block architecturally (windows
commit exactly; fast-forward *is* the golden model) the final memory
image is exact — only the cycle count is estimated, so the standard
``verify_edge_run`` check stays on for sampled runs.  The cycle
estimate pools the measured windows (SMARTS-style ratio estimator):
``cycles = total_insts / pooled_IPC``; the per-window IPC spread is
reported as a relative-error estimate in ``RunResult.sampling``.

The first window starts at the program entry with cold structures, so
a program shorter than ``warmup + window`` blocks never fast-forwards
and the result is bit-identical to an unsampled run (the ``exact``
flag in ``RunResult.sampling``).

Fidelity caveats, all timing-only: ``loads_executed`` counts functional
loads during fast-forward but executed loads (including replays) inside
windows; microarchitectural event counters (fetches, squashes, energy
events, DRAM requests) are measured in the windows and scaled by
committed-instruction coverage.  TRIPS-baseline specs are not sampled —
the runner falls back to full detail for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import repro.obs as obs_lib
from repro.isa.interp import Interpreter
from repro.isa.program import HALT_ADDR
from repro.sample.checkpoint import Checkpoint
from repro.sample.config import SamplingConfig
from repro.sample.shadow import RecordingMemory, ShadowUarch, rebuild_directory
from repro.tflex import TFlexSystem
from repro.tflex.placement import rectangle
from repro.tflex.stats import LatencyBreakdown, ProcStats

#: Cycle budget per detailed window (matches the full-detail runner).
MAX_WINDOW_CYCLES = 30_000_000

#: ProcStats fields measured only inside windows, extrapolated by
#: committed-instruction coverage.
_SCALED_FIELDS = (
    "insts_fetched", "blocks_fetched", "blocks_squashed", "mispredictions",
    "violations", "replays", "nacks", "predictions", "predictions_correct",
    "inflight_integral",
)


@dataclass
class _Window:
    """One detailed window's raw yield."""

    stats: ProcStats
    dram_requests: int
    measured_insts: Optional[int]
    measured_cycles: Optional[int]
    #: True when the program halted inside this window (its measured
    #: interval then spans the whole window, drain included).
    terminal: bool = False
    #: True when the program halted before the warm-up mark, so the
    #: measured interval is the whole (ramp-and-drain) tail: exact for
    #: its own stratum but never representative of steady-state gaps.
    tail: bool = False


class SampledRun:
    """Driver for one sampled simulation; see the module docstring.

    ``step()`` advances one window plus the following fast-forward
    interval; ``checkpoint()``/``resume()`` snapshot and restore the
    run at those boundaries; ``run()`` drives to completion and builds
    the extrapolated :class:`~repro.harness.runner.RunResult`.
    """

    def __init__(self, spec, sampling: Optional[SamplingConfig] = None,
                 trace=None) -> None:
        from repro.harness.runner import build_edge_config, cached_program

        if spec.kind != "edge":
            raise ValueError(f"sampling only supports edge specs, not {spec.kind!r}")
        if spec.trips:
            raise ValueError("TRIPS-baseline specs are not sampled")
        if sampling is None:
            sampling = SamplingConfig.from_dict(spec.sampling_dict()) \
                or SamplingConfig()
        sampling.validate()
        self.spec = spec
        self.sampling = sampling
        self.cfg, self.ncores = build_edge_config(spec)
        self.program, self.expected, self.kernel = \
            cached_program("edge", spec.bench, spec.scale)
        self.mem = RecordingMemory()
        self.interp = Interpreter(self.program, memory=self.mem)
        self.shadow = ShadowUarch(self.cfg, self.ncores)
        self.addr = self.program.address_of(self.program.entry)
        self.ghist = 0
        # Functional progress (exact): committed blocks/insts/loads/stores.
        self.blocks = 0
        self.insts = 0
        self.loads = 0
        self.stores = 0
        self.windows: list[_Window] = []
        # Dependence-violation history carried between windows: entries
        # accumulate monotonically in a real run and keep re-executions
        # of a violating load deferred, so a fresh set per window would
        # bias windows fast.
        self.dependence: set[tuple[str, int]] = set()
        self.finished = False
        self.obs = obs_lib.current()
        #: Shared fast-forward trace session (repro.sample.trace):
        #: a RecordSession captures this run's intervals, a
        #: ReplaySession substitutes recorded intervals for live
        #: interpretation.  None = plain live fast-forward.
        self.trace = trace

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One detailed window, then one fast-forward interval.

        Returns True while the program has more blocks to execute."""
        if self.finished:
            return False
        self._window()
        if not self.finished:
            self._fast_forward(self.sampling.ff_blocks)
        return not self.finished

    def run(self):
        """Drive to completion and return the extrapolated RunResult."""
        while self.step():
            pass
        return self.result()

    # ------------------------------------------------------------------
    # Detailed windows
    # ------------------------------------------------------------------

    def _window(self) -> None:
        sampling = self.sampling
        system = TFlexSystem(self.cfg)
        proc = system.compose(rectangle(self.cfg, self.ncores), self.program,
                              name=self.spec.bench)

        # Architectural injection: share the interpreter's memory (the
        # window commits into it) and copy registers in place (the
        # regfile banks alias ``proc.regs``).
        proc.memory = self.mem
        proc.regs[:] = self.interp.regs
        proc.dependence_set |= self.dependence
        self._inject(system, proc)

        # The first window starts from the true initial state (a cold
        # machine IS the real machine at the program entry), so its
        # ramp-up is representative and is measured from cycle zero.
        # Later windows run on injected state and need the warm-up
        # blocks to heal the injection error before the mark.
        warmup = sampling.warmup_blocks if self.blocks else 0
        proc.commit_limit = warmup + sampling.window_blocks
        if warmup > 0:
            proc.measure_after = warmup
        else:
            proc.measure_mark = (system.queue.now, 0)
        proc.start(self.addr, self.ghist)
        system.run(max_cycles=MAX_WINDOW_CYCLES)

        stats = proc.stats
        end_cycle = proc.start_cycle + stats.cycles
        finished = (proc.last_commit_next is None
                    or proc.last_commit_next == HALT_ADDR)
        measured_insts = measured_cycles = None
        tail = False
        if proc.measure_mark is not None:
            mark_cycle, mark_insts = proc.measure_mark
            insts = stats.insts_committed - mark_insts
            cycles = end_cycle - mark_cycle
            if insts > 0 and cycles > 0:
                measured_insts, measured_cycles = insts, cycles
        elif finished and stats.insts_committed > 0 and stats.cycles > 0:
            # The program ended before the warm-up mark: the whole
            # interval is the best measurement of these final blocks
            # (drain included) — better than extrapolating them at a
            # steady-state IPC they never reach.
            measured_insts = stats.insts_committed
            measured_cycles = stats.cycles
            tail = True
        self.windows.append(_Window(stats, system.dram.stats.requests,
                                    measured_insts, measured_cycles,
                                    terminal=finished, tail=tail))
        self.blocks += stats.blocks_committed
        self.insts += stats.insts_committed
        self.loads += stats.loads_executed
        self.stores += stats.stores_committed

        if self.obs.active:
            self.obs.emit("sample.window", bench=self.spec.bench,
                          index=len(self.windows) - 1,
                          blocks=stats.blocks_committed, cycles=stats.cycles,
                          measured_insts=measured_insts,
                          measured_cycles=measured_cycles)
            self.obs.metrics.inc("sample.windows", bench=self.spec.bench)
            self.obs.metrics.inc("sample.window_blocks",
                                 stats.blocks_committed, bench=self.spec.bench)

        self.dependence = set(proc.dependence_set)
        if finished:
            self.finished = True
            return
        self.addr = proc.last_commit_next
        self.ghist = proc.last_commit_ghist
        self._absorb(system, proc)

    def _swap_state(self, system: TFlexSystem, proc) -> None:
        """Exchange warm state between the shadow and a window system.

        Each window runs on a fresh ``TFlexSystem`` that is discarded
        after :meth:`_absorb`, and the shadow is idle while the window
        runs — so moving state by O(1) reference swaps (contents
        identical to the ``state_dict``/``export_lines`` round trip,
        which JSON checkpoints still use) is observably a copy in both
        directions, without materializing per-window snapshots."""
        shadow = self.shadow
        for i, bank in enumerate(shadow.pred_banks):
            system.cores[proc.core_of_index(i)].predictor.swap_state(bank)
        proc.ras.swap_state(shadow.ras)
        for i in range(self.ncores):
            system.cores[proc.core_of_index(i)].icache.swap_lines(
                shadow.icaches[i])
        for b in range(shadow.num_dbanks):
            system.cores[proc.dbank_core(b)].dcache.swap_lines(
                shadow.dcaches[b])
        for l2_bank, shadow_bank in zip(system.l2.banks, shadow.l2.banks):
            l2_bank.swap_lines(shadow_bank)

    def _inject(self, system: TFlexSystem, proc) -> None:
        """Move the shadow's warm state into the real structures."""
        self._swap_state(system, proc)
        rebuild_directory(system.l2, self._l1_by_global_core(system, proc))

    def _absorb(self, system: TFlexSystem, proc) -> None:
        """Move the window's final state back into the shadow (and the
        interpreter's registers) so fast-forward continues from it."""
        self.interp.regs[:] = proc.regs
        self._swap_state(system, proc)
        self.shadow.rebuild_directory()

    def _l1_by_global_core(self, system: TFlexSystem, proc) -> dict:
        l1_by_core: dict[int, list] = {}
        for i in range(self.ncores):
            core_id = proc.core_of_index(i)
            l1_by_core.setdefault(core_id, []).append(
                system.cores[core_id].icache)
        for b in range(self.shadow.num_dbanks):
            core_id = proc.dbank_core(b)
            l1_by_core.setdefault(core_id, []).append(
                system.cores[core_id].dcache)
        return l1_by_core

    # ------------------------------------------------------------------
    # Fast-forward
    # ------------------------------------------------------------------

    def _fast_forward(self, n_blocks: int) -> None:
        trace = self.trace
        if trace is not None and trace.mode == "replay":
            # Intervals are indexed by position: the loop alternates
            # window -> fast-forward, so the interval after window k is
            # interval k (resume restores k as len(windows)).
            interval = trace.interval_for(len(self.windows) - 1, self.addr)
            if interval is not None:
                profiler = self.obs.profiler
                if profiler.enabled:
                    with profiler.phase("sample.ff_replay"):
                        executed = self._replay_interval(interval)
                else:
                    executed = self._replay_interval(interval)
                if self.obs.active:
                    self.obs.emit("sample.ff_replayed", bench=self.spec.bench,
                                  blocks=executed, resumed_at=self.addr,
                                  finished=self.finished)
                    self.obs.metrics.inc("sample.ff_replayed",
                                         bench=self.spec.bench)
                    self.obs.metrics.inc("sample.ff_replayed_blocks",
                                         executed, bench=self.spec.bench)
                return
        profiler = self.obs.profiler
        if profiler.enabled:
            with profiler.phase("sample.ff"):
                executed = self._ff_loop(n_blocks)
        else:
            executed = self._ff_loop(n_blocks)
        if self.obs.active:
            self.obs.emit("sample.ff", bench=self.spec.bench, blocks=executed,
                          resumed_at=self.addr, finished=self.finished)
            self.obs.metrics.inc("sample.ff", bench=self.spec.bench)
            self.obs.metrics.inc("sample.ff_blocks", executed,
                                 bench=self.spec.bench)

    def _ff_loop(self, n_blocks: int) -> int:
        interp = self.interp
        mem = self.mem
        shadow = self.shadow
        program = self.program
        addr = self.addr
        ghist = self.ghist
        executed = 0
        rec = self.trace if (self.trace is not None
                             and self.trace.mode == "record") else None
        if rec is not None:
            rec.begin_interval(len(self.windows) - 1, addr, interp.regs)
        for __ in range(n_blocks):
            block = program.block_at(addr)
            mem.load_addrs.clear()
            mem.recording = True
            outcome = interp.execute_block(block)
            mem.recording = False
            interp.commit(outcome)
            ghist = shadow.observe(block, addr, ghist, outcome, mem.load_addrs)
            if rec is not None:
                rec.record_block(addr, outcome, mem.load_addrs)
            self.blocks += 1
            self.insts += outcome.insts_fired
            self.loads += outcome.loads
            self.stores += len(outcome.stores)
            executed += 1
            addr = outcome.next_addr
            if addr == HALT_ADDR:
                self.finished = True
                break
        self.addr = addr
        self.ghist = ghist
        if rec is not None:
            rec.end_interval(interp.regs, self.finished)
        return executed

    def _replay_interval(self, interval) -> int:
        """Re-apply one recorded fast-forward interval: stores land on
        memory in commit order, recorded outcomes warm this
        composition's shadow structures, and the boundary register
        delta replaces per-block write application — functionally
        identical to :meth:`_ff_loop` without interpreting a single
        instruction."""
        from repro.mem.flatmem import PAGE_MASK, PAGE_SIZE
        from repro.sample.trace import ReplayOutcome

        mem = self.mem
        shadow = self.shadow
        program = self.program
        ghist = self.ghist
        addrs = interval.addrs
        exits = interval.exits
        nexts = interval.nexts
        branch_ops = interval.branch_ops
        insts = interval.insts
        loads = interval.loads
        load_addrs = interval.load_addrs
        stores = interval.stores
        stores_raw = interval.stores_raw
        outcome = ReplayOutcome()
        pages = mem._pages
        write_bytes = mem.write_bytes
        observe = shadow.observe
        block_at = program.block_at
        for i in range(len(addrs)):
            addr = addrs[i]
            block = block_at(addr)
            block_stores = stores[i]
            # Stores were pre-encoded to raw bytes at trace decode
            # (byte-identical to ``FlatMemory.store``); land them with
            # direct page writes, falling back to the generic path only
            # for the rare page-straddling store.
            for saddr, raw in stores_raw[i]:
                off = saddr & PAGE_MASK
                end = off + len(raw)
                if end <= PAGE_SIZE:
                    number = saddr >> 12
                    page = pages.get(number)
                    if page is None:
                        page = pages[number] = bytearray(PAGE_SIZE)
                    page[off:end] = raw
                else:
                    write_bytes(saddr, raw)
            outcome.exit_id = exits[i]
            outcome.next_addr = nexts[i]
            outcome.branch_op = branch_ops[i]
            outcome.stores = block_stores
            ghist = observe(block, addr, ghist, outcome, load_addrs[i])
            self.insts += insts[i]
            self.loads += loads[i]
            self.stores += len(block_stores)
        executed = len(addrs)
        self.blocks += executed
        self.ghist = ghist
        regs = self.interp.regs
        for index, value in interval.reg_delta:
            regs[index] = value
        self.addr = nexts[-1] if executed else self.addr
        if interval.finished:
            self.finished = True
        return executed

    # ------------------------------------------------------------------
    # Extrapolation
    # ------------------------------------------------------------------

    def result(self):
        """Extrapolate the measured windows into a full RunResult."""
        from repro.harness.runner import RunResult
        from repro.power import EnergyModel
        from repro.workloads import verify_edge_run

        if not self.finished:
            raise RuntimeError("sampled run has not finished")
        if self.spec.verify:
            verify_edge_run(self.kernel, self.mem, self.expected)

        window_insts = sum(w.stats.insts_committed for w in self.windows)
        total_insts = self.insts
        exact = window_insts == total_insts
        measures = [(w.measured_insts, w.measured_cycles)
                    for w in self.windows if w.measured_insts]

        if exact:
            # The whole program fit in the detailed windows: no
            # extrapolation, bit-identical to a full-detail run.
            cycles = sum(w.stats.cycles for w in self.windows)
            factor = 1.0
            ipc_estimate = total_insts / cycles if cycles else 0.0
            rel_stddev: Optional[float] = 0.0
        else:
            if not measures:
                raise RuntimeError(
                    "sampled run fast-forwarded but measured no windows")
            # Stratified estimator: each measured interval covers its
            # committed instructions exactly (the first window from the
            # true cold start, later ones after warm-up), so those
            # cycles stand as-is.  Only the unmeasured instructions —
            # fast-forward gaps plus warm-up blocks — are extrapolated,
            # at the pooled IPC of the warmed windows alone: the cold
            # first window is real but unrepresentative of the
            # steady-state gaps it would otherwise be pooled with.
            measured_insts = sum(m for m, __ in measures)
            measured_cycles = sum(c for __, c in measures)
            # The cold first window and a ramp-and-drain tail are
            # measured exactly but are unrepresentative of the
            # steady-state gaps, so they stay out of the gap estimator
            # when any warmed window exists.
            steady = [(w.measured_insts, w.measured_cycles)
                      for w in self.windows[1:]
                      if w.measured_insts and not w.tail]
            steady = steady or measures
            steady_ipc = (sum(m for m, __ in steady)
                          / sum(c for __, c in steady))
            unmeasured_insts = total_insts - measured_insts
            cycles = max(1, measured_cycles
                         + round(unmeasured_insts / steady_ipc))
            ipc_estimate = total_insts / cycles
            factor = total_insts / window_insts
            ipcs = [m / c for m, c in steady]
            if len(ipcs) >= 2:
                mean = sum(ipcs) / len(ipcs)
                var = sum((x - mean) ** 2 for x in ipcs) / len(ipcs)
                rel_stddev = math.sqrt(var) / mean if mean else None
            else:
                rel_stddev = None

        merged = ProcStats()
        merged.cycles = cycles
        merged.blocks_committed = self.blocks
        merged.insts_committed = total_insts
        merged.loads_executed = self.loads
        merged.stores_committed = self.stores
        for name in _SCALED_FIELDS:
            setattr(merged, name, round(
                sum(getattr(w.stats, name) for w in self.windows) * factor))
        merged.fetch_latency = self._merge_breakdowns(
            (w.stats.fetch_latency for w in self.windows), factor)
        merged.commit_latency = self._merge_breakdowns(
            (w.stats.commit_latency for w in self.windows), factor)
        for window in self.windows:
            merged.energy_events.update(window.stats.energy_events)
        if factor != 1.0:
            for event in merged.energy_events:
                merged.energy_events[event] = round(
                    merged.energy_events[event] * factor)
        dram_requests = round(
            sum(w.dram_requests for w in self.windows) * factor)

        power = EnergyModel().breakdown(
            merged.energy_events, merged.cycles, self.ncores,
            dram_requests=dram_requests)

        sampling_info = {
            "config": self.sampling.to_dict(),
            "exact": exact,
            "windows": len(self.windows),
            "measured_windows": len(measures),
            "total_insts": total_insts,
            "window_insts": window_insts,
            "ipc_estimate": ipc_estimate,
            "ipc_rel_stddev": rel_stddev,
        }
        return RunResult(
            bench=self.spec.bench, label=self.spec.label(),
            num_cores=self.ncores, cycles=cycles,
            insts_committed=total_insts, stats=merged, power=power,
            dram_requests=dram_requests, sampling=sampling_info)

    @staticmethod
    def _merge_breakdowns(breakdowns, factor: float) -> LatencyBreakdown:
        merged = LatencyBreakdown()
        for breakdown in breakdowns:
            merged.samples += breakdown.samples
            merged.components.update(breakdown.components)
        if factor != 1.0:
            merged.samples = round(merged.samples * factor)
            for name in merged.components:
                merged.components[name] = round(
                    merged.components[name] * factor)
        return merged

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the run at the current window/fast-forward boundary."""
        return Checkpoint(
            spec=self.spec.canonical(),
            sampling=self.sampling.to_dict(),
            addr=self.addr, ghist=self.ghist,
            blocks=self.blocks, insts=self.insts,
            loads=self.loads, stores=self.stores,
            finished=self.finished,
            regs=list(self.interp.regs),
            memory=self.mem.snapshot(),
            shadow=self.shadow.state_dict(),
            windows=[{
                "stats": w.stats.to_dict(),
                "dram_requests": w.dram_requests,
                "measured": ([w.measured_insts, w.measured_cycles]
                             if w.measured_insts else None),
                "terminal": w.terminal,
                "tail": w.tail,
            } for w in self.windows],
            dependence=sorted([label, lsq_id]
                              for label, lsq_id in self.dependence),
        )

    @staticmethod
    def resume(spec, checkpoint: Checkpoint, trace=None) -> "SampledRun":
        """Rebuild a run from a checkpoint; continuing it produces the
        exact result the uninterrupted run would have.  ``trace`` may
        hand the resumed run a replay session (intervals re-align by
        window count); a record session started mid-run abandons
        itself rather than persist a partial trace."""
        if checkpoint.spec != spec.canonical():
            raise ValueError("checkpoint was taken under a different job spec")
        run = SampledRun(spec, SamplingConfig.from_dict(checkpoint.sampling),
                         trace=trace)
        run.addr = checkpoint.addr
        run.ghist = checkpoint.ghist
        run.blocks = checkpoint.blocks
        run.insts = checkpoint.insts
        run.loads = checkpoint.loads
        run.stores = checkpoint.stores
        run.finished = checkpoint.finished
        run.interp.regs[:] = checkpoint.regs
        run.mem.restore(checkpoint.memory)
        run.shadow.load_state(checkpoint.shadow)
        run.windows = [
            _Window(stats=ProcStats.from_dict(w["stats"]),
                    dram_requests=w["dram_requests"],
                    measured_insts=w["measured"][0] if w["measured"] else None,
                    measured_cycles=w["measured"][1] if w["measured"] else None,
                    terminal=w.get("terminal", False),
                    tail=w.get("tail", False))
            for w in checkpoint.windows
        ]
        run.dependence = {(label, lsq_id)
                          for label, lsq_id in checkpoint.dependence}
        return run


def run_sampled(spec):
    """Execute one edge job spec with sampling; returns a RunResult.

    With fast-forward tracing enabled (the default — see
    :mod:`repro.sample.trace`), the first run of a
    ``(program, scale, schedule)`` records its fast-forward intervals
    into the trace store and every later composition replays them; the
    result is bit-identical either way.
    """
    from repro.sample.trace import open_trace_session

    session = open_trace_session(spec)
    run = SampledRun(spec, trace=session)
    result = run.run()
    if session is not None:
        session.finish(run)
    return result
