"""Sampled simulation engine (interpreter fast-forward + detailed windows).

See :mod:`repro.sample.engine` for the design.  The public surface:

* :class:`SamplingConfig` — the window/fast-forward rhythm;
* :class:`SampledRun` — stepwise driver with checkpoint/resume;
* :func:`run_sampled` — one job spec to one extrapolated RunResult;
* :class:`Checkpoint` — JSON-safe resumable snapshot;
* :class:`ShadowUarch` — the warm structures driven during fast-forward;
* :class:`FFTraceStore` / :func:`configure_ff_trace` — shared
  fast-forward traces, recorded once per (program, scale, schedule)
  and replayed by every other composition
  (:mod:`repro.sample.trace`).
"""

from repro.sample.checkpoint import Checkpoint
from repro.sample.config import SamplingConfig
from repro.sample.engine import SampledRun, run_sampled
from repro.sample.shadow import RecordingMemory, ShadowUarch
from repro.sample.trace import (FFTraceStore, configure_ff_trace,
                                open_trace_session, reset_ff_trace,
                                trace_key)

__all__ = [
    "Checkpoint",
    "FFTraceStore",
    "RecordingMemory",
    "SampledRun",
    "SamplingConfig",
    "ShadowUarch",
    "configure_ff_trace",
    "open_trace_session",
    "reset_ff_trace",
    "run_sampled",
    "trace_key",
]
