"""Sampled simulation engine (interpreter fast-forward + detailed windows).

See :mod:`repro.sample.engine` for the design.  The public surface:

* :class:`SamplingConfig` — the window/fast-forward rhythm;
* :class:`SampledRun` — stepwise driver with checkpoint/resume;
* :func:`run_sampled` — one job spec to one extrapolated RunResult;
* :class:`Checkpoint` — JSON-safe resumable snapshot;
* :class:`ShadowUarch` — the warm structures driven during fast-forward.
"""

from repro.sample.checkpoint import Checkpoint
from repro.sample.config import SamplingConfig
from repro.sample.engine import SampledRun, run_sampled
from repro.sample.shadow import RecordingMemory, ShadowUarch

__all__ = [
    "Checkpoint",
    "RecordingMemory",
    "SampledRun",
    "SamplingConfig",
    "ShadowUarch",
    "run_sampled",
]
