"""Shared fast-forward traces: record once, replay across compositions.

A sampled run's fast-forward trajectory — the sequence of committed
blocks, their exits/branches, load/store addresses, and the
architectural register/memory deltas — depends only on the *program*
(benchmark + scale) and the *sampling schedule* (window boundaries fall
at fixed block counts), never on the composition: detailed windows
commit architecturally exactly and the interpreter is the golden model.
Every figure sweep and search rung evaluates many compositions of the
same benchmark, so the first run records its fast-forward intervals
into a content-addressed :class:`FFTraceStore` and every later
composition *replays* them: recorded outcomes are fed to that run's own
:class:`~repro.sample.shadow.ShadowUarch` (predictor/RAS/cache warm-up
interleaves by core count, so it must be re-hashed per composition),
recorded stores are applied to memory in commit order, and the interval
boundary register delta is injected directly — no interpreter
execution.  O(compositions x ff) interpretation becomes O(1) record +
O(compositions) cheap replays.

Correctness guards, layered:

* the trace key hashes the program fingerprint, scale, and the full
  sampling schedule (``TRACE_SCHEMA``-salted), so a schedule or
  workload change misses instead of colliding;
* every interval replay checks its recorded start address against the
  engine's resume address; any mismatch abandons the trace and falls
  back to live interpretation (the architectural state is exact at
  every boundary, so the fallback continues seamlessly);
* the architectural end-state verification (``verify_edge_run``) stays
  on for replayed runs, exactly as for live ones.

Replayed runs produce bit-identical ``RunResult`` payloads to direct
interpretation — enforced by the cross-composition differential suite
(``tests/sample/test_trace.py``) and the golden accuracy gates.

The store root defaults to ``<cache-dir>/traces`` (the same resolution
as the result store, hermetic under pytest); ``REPRO_FF_TRACE_DIR``
overrides it and ``REPRO_FF_TRACE=0`` disables tracing — both are
plain environment variables so executor worker processes inherit the
CLI's configuration without protocol changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
from typing import Optional, Sequence

import repro.obs as obs_lib
from repro.exec.store import BlobStore

#: Bump when the trace layout changes; old blobs then read as misses.
TRACE_SCHEMA = 1

#: Environment switches (inherited by executor workers).
TRACE_ENABLED_ENV = "REPRO_FF_TRACE"
TRACE_DIR_ENV = "REPRO_FF_TRACE_DIR"

#: Process-wide configuration (None = resolve from the environment).
_OPTIONS: dict = {"enabled": None, "dir": None}

#: key -> decoded FFTrace: one parse serves every replay in-process
#: (a serial composition sweep decodes each trace exactly once).
_PARSED: dict[str, "FFTrace"] = {}
_PARSED_CAP = 4


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

def configure_ff_trace(enabled: Optional[bool] = None,
                       cache_dir=None) -> dict:
    """Set process-wide trace options; returns the active options.

    ``enabled=None`` leaves the current setting; the CLI maps
    ``--ff-trace``/``--no-ff-trace`` here and mirrors the choice into
    the environment so worker processes agree.
    """
    if enabled is not None:
        _OPTIONS["enabled"] = bool(enabled)
    if cache_dir is not None:
        _OPTIONS["dir"] = pathlib.Path(cache_dir)
    return dict(_OPTIONS)


def reset_ff_trace() -> None:
    """Drop explicit configuration and the in-process parsed cache
    (tests; the on-disk store is untouched)."""
    _OPTIONS["enabled"] = None
    _OPTIONS["dir"] = None
    _PARSED.clear()


def trace_enabled() -> bool:
    """Whether sampled runs consult the trace store (default on)."""
    if _OPTIONS["enabled"] is not None:
        return _OPTIONS["enabled"]
    env = os.environ.get(TRACE_ENABLED_ENV)
    if env is not None:
        return env.strip().lower() not in ("", "0", "no", "off", "false")
    return True


def resolve_trace_dir() -> pathlib.Path:
    """Trace-store root: explicit configuration, then
    ``$REPRO_FF_TRACE_DIR``, then ``<result cache dir>/traces``."""
    if _OPTIONS["dir"] is not None:
        return _OPTIONS["dir"]
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    from repro.harness.runner import resolve_cache_dir

    return resolve_cache_dir() / "traces"


class FFTraceStore(BlobStore):
    """Content-addressed fast-forward trace store (gzip JSON blobs
    under ``<root>/<key[:2]>/<key>.json.gz``, atomic writes,
    corruption-tolerant reads — see :class:`repro.exec.store.BlobStore`)."""

    def __init__(self, root=None) -> None:
        super().__init__(root if root is not None else resolve_trace_dir(),
                         salt=TRACE_SCHEMA)


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------

def program_fingerprint(program) -> str:
    """Structural content hash of a built program: entry, block layout
    (label/size/instruction counts), data segment, and initial
    registers.  Memoized on the program object — one hash per build.

    The fingerprint deliberately stops at structure (it does not
    disassemble every instruction): a code change that preserves the
    full block layout *and* data image is caught by the per-interval
    start-address checks and the architectural end-state verification,
    which stay on for every replayed run.
    """
    fp = getattr(program, "_ff_fingerprint", None)
    if fp is None:
        digest = hashlib.sha256()
        digest.update(repr((program.name, program.entry,
                            tuple(program.order))).encode())
        for label in program.order:
            block = program.blocks[label]
            digest.update(repr((label, block.size, len(block.reads),
                                len(block.writes))).encode())
        for addr in sorted(program.data):
            digest.update(str(addr).encode())
            digest.update(program.data[addr])
        digest.update(repr(sorted(program.reg_init.items())).encode())
        fp = digest.hexdigest()
        program._ff_fingerprint = fp
    return fp


def schedule_tag(sampling: dict) -> str:
    """Human-readable schedule label for events/metrics, e.g.
    ``ff448/w40/wu8``."""
    return (f"ff{sampling['ff_blocks']}/w{sampling['window_blocks']}"
            f"/wu{sampling['warmup_blocks']}")


def _eligible(spec) -> bool:
    """Specs whose fast-forward trajectory is composition-independent
    and routed through the sampled engine: sampled EDGE points without
    fault injection (TRIPS never samples)."""
    return (spec.kind == "edge" and bool(spec.sampling)
            and not spec.trips and not spec.faults)


def trace_group(spec) -> Optional[tuple]:
    """Cheap grouping key — every spec in a group shares one trace.
    ``None`` for specs the trace store does not apply to.

    Unlike :func:`trace_key` this never builds the program, so batch
    planners (``prewarm_specs``) can partition without paying a
    workload build per spec.
    """
    if not _eligible(spec):
        return None
    return (spec.bench, spec.scale, spec.sampling)


def trace_key(spec) -> Optional[str]:
    """Content address of the trace ``spec`` records or replays:
    sha256 over the schema version, program fingerprint, scale, and the
    full sampling schedule.  Composition axes (``ncores``, overrides,
    ``ideal_handshake``, ``verify``) are deliberately absent — the
    interpreter never reads them."""
    if not _eligible(spec):
        return None
    from repro.harness.runner import cached_program

    program, __, __ = cached_program("edge", spec.bench, spec.scale)
    payload = {
        "schema": TRACE_SCHEMA,
        "bench": spec.bench,
        "scale": spec.scale,
        "program": program_fingerprint(program),
        "sampling": dict(sorted(spec.sampling_dict().items())),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ----------------------------------------------------------------------
# Schema: encode / decode
# ----------------------------------------------------------------------

def encode_reg_delta(start_regs: Sequence, end_regs: Sequence) -> list:
    """Sparse ``[[index, value], ...]`` delta between two register
    files of equal length (typically a handful of entries per
    interval against the 128-register file)."""
    if len(start_regs) != len(end_regs):
        raise ValueError(f"register files differ in length: "
                         f"{len(start_regs)} vs {len(end_regs)}")
    return [[i, end_regs[i]] for i in range(len(start_regs))
            if start_regs[i] != end_regs[i]
            or type(start_regs[i]) is not type(end_regs[i])]


def decode_reg_delta(start_regs: Sequence, delta: list) -> list:
    """Apply an :func:`encode_reg_delta` delta; returns the end
    register file as a new list."""
    regs = list(start_regs)
    for index, value in delta:
        regs[index] = value
    return regs


def _encode_store_raw(size: int, value, fp: bool) -> bytes:
    """The exact bytes :meth:`FlatMemory.store` would write — encoding
    is deterministic, so replay can pre-compute it once per decoded
    trace instead of once per store per composition."""
    if fp:
        return struct.pack("<d", float(value))
    return (int(value) & ((1 << (size * 8)) - 1)).to_bytes(size, "little")


class FFInterval:
    """One decoded fast-forward interval: columnar per-block arrays
    plus the boundary register delta."""

    __slots__ = ("start", "addrs", "exits", "nexts", "branch_ops",
                 "insts", "loads", "load_addrs", "stores", "stores_raw",
                 "reg_delta", "finished")

    def __init__(self, start, addrs, exits, nexts, branch_ops, insts,
                 loads, load_addrs, stores, reg_delta, finished,
                 stores_raw=None):
        self.start = start
        self.addrs = addrs
        self.exits = exits
        self.nexts = nexts
        self.branch_ops = branch_ops      # op string per block
        self.insts = insts
        self.loads = loads                # functional load count per block
        self.load_addrs = load_addrs      # D-cache load addresses per block
        self.stores = stores              # [(0, addr, size, value, fp), ...]
        # Pre-encoded [(addr, raw_bytes), ...] per block: what the
        # replay loop actually writes to memory.
        self.stores_raw = stores_raw if stores_raw is not None else [
            [(s[1], _encode_store_raw(s[2], s[3], s[4])) for s in blk]
            for blk in stores]
        self.reg_delta = reg_delta        # [[index, value], ...] at the end
        self.finished = finished

    def __len__(self) -> int:
        return len(self.addrs)


class FFTrace:
    """One decoded trace: metadata plus ordered intervals."""

    __slots__ = ("bench", "scale", "sampling", "program", "intervals")

    def __init__(self, bench, scale, sampling, program, intervals):
        self.bench = bench
        self.scale = scale
        self.sampling = sampling
        self.program = program
        self.intervals = intervals

    def blocks(self) -> int:
        return sum(len(iv) for iv in self.intervals)


class ReplayOutcome:
    """Mutable stand-in for :class:`~repro.isa.interp.BlockOutcome`
    carrying exactly the fields the shadow warm-up reads; one instance
    is reused across a whole replayed interval."""

    __slots__ = ("exit_id", "next_addr", "branch_op", "stores")

    def __init__(self):
        self.exit_id = 0
        self.next_addr = 0
        self.branch_op = None
        self.stores = ()


def _encode_interval(interval: dict, op_index: dict, ops: list) -> dict:
    """Flatten one recorded interval into the JSON wire form: branch
    opcodes interned into a shared table, stores flattened to
    ``[addr, size, value, fp01] * n`` quads."""
    brix = []
    for op in interval["branch_ops"]:
        index = op_index.get(op)
        if index is None:
            index = op_index[op] = len(ops)
            ops.append(op)
        brix.append(index)
    flat_stores = []
    for block_stores in interval["stores"]:
        flat = []
        for __lsq, addr, size, value, fp in block_stores:
            flat.extend((addr, size, value, 1 if fp else 0))
        flat_stores.append(flat)
    return {
        "start": interval["start"],
        "addrs": interval["addrs"],
        "exits": interval["exits"],
        "nexts": interval["nexts"],
        "brix": brix,
        "insts": interval["insts"],
        "loads": interval["loads"],
        "la": interval["load_addrs"],
        "st": flat_stores,
        "regs": interval["reg_delta"],
        "finished": interval["finished"],
    }


def encode_trace(bench: str, scale: int, sampling: dict, program_fp: str,
                 intervals: list) -> dict:
    """The JSON-safe payload for one recorded trace."""
    ops: list = []
    op_index: dict = {}
    encoded = [_encode_interval(iv, op_index, ops) for iv in intervals]
    return {
        "schema": TRACE_SCHEMA,
        "bench": bench,
        "scale": scale,
        "sampling": dict(sorted(sampling.items())),
        "program": program_fp,
        "branch_ops": ops,
        "intervals": encoded,
    }


def decode_trace(payload: dict) -> FFTrace:
    """Rebuild an :class:`FFTrace` from :func:`encode_trace` output;
    raises ``ValueError`` on an unknown schema or malformed payload."""
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(f"trace schema {schema!r} != {TRACE_SCHEMA}")
    ops = payload["branch_ops"]
    intervals = []
    for raw in payload["intervals"]:
        stores = []
        stores_raw = []
        for flat in raw["st"]:
            blk = []
            blk_raw = []
            for i in range(0, len(flat), 4):
                saddr, size, value = flat[i], flat[i + 1], flat[i + 2]
                fp = bool(flat[i + 3])
                blk.append((0, saddr, size, value, fp))
                blk_raw.append((saddr, _encode_store_raw(size, value, fp)))
            stores.append(blk)
            stores_raw.append(blk_raw)
        intervals.append(FFInterval(
            start=raw["start"], addrs=raw["addrs"], exits=raw["exits"],
            nexts=raw["nexts"],
            branch_ops=[ops[i] for i in raw["brix"]],
            insts=raw["insts"], loads=raw["loads"],
            load_addrs=raw["la"], stores=stores, stores_raw=stores_raw,
            reg_delta=raw["regs"], finished=raw["finished"]))
    return FFTrace(bench=payload["bench"], scale=payload["scale"],
                   sampling=payload["sampling"],
                   program=payload["program"], intervals=intervals)


# ----------------------------------------------------------------------
# Sessions (the engine's record/replay handles)
# ----------------------------------------------------------------------

class RecordSession:
    """Accumulates one run's fast-forward intervals; persisted once the
    run finishes cleanly from the program entry."""

    mode = "record"

    def __init__(self, key: str, store: FFTraceStore, spec,
                 program_fp: str) -> None:
        self.key = key
        self.store = store
        self.spec = spec
        self.program_fp = program_fp
        self.intervals: list = []
        self.abandoned = False
        self._cur: Optional[dict] = None
        self._start_regs: Optional[list] = None

    def begin_interval(self, index: int, addr: int, regs) -> None:
        if self.abandoned:
            return
        if index != len(self.intervals):
            # Resumed mid-run (checkpoint) or intervals were skipped:
            # a partial recording would replay wrong, so stop here.
            self.abandoned = True
            self._cur = None
            return
        self._cur = {
            "start": addr, "addrs": [], "exits": [], "nexts": [],
            "branch_ops": [], "insts": [], "loads": [],
            "load_addrs": [], "stores": [],
            "reg_delta": [], "finished": False,
        }
        self._start_regs = list(regs)

    def record_block(self, addr: int, outcome, load_addrs) -> None:
        cur = self._cur
        if cur is None:
            return
        cur["addrs"].append(addr)
        cur["exits"].append(outcome.exit_id)
        cur["nexts"].append(outcome.next_addr)
        cur["branch_ops"].append(outcome.branch_op)
        cur["insts"].append(outcome.insts_fired)
        cur["loads"].append(outcome.loads)
        cur["load_addrs"].append(list(load_addrs))
        cur["stores"].append(list(outcome.stores))

    def end_interval(self, regs, finished: bool) -> None:
        cur = self._cur
        if cur is None:
            return
        cur["reg_delta"] = encode_reg_delta(self._start_regs, regs)
        cur["finished"] = finished
        self.intervals.append(cur)
        self._cur = None
        self._start_regs = None

    def finish(self, run) -> None:
        """Persist the trace if the run completed a clean recording."""
        if self.abandoned or not run.finished or not self.intervals:
            return
        payload = encode_trace(self.spec.bench, self.spec.scale,
                               self.spec.sampling_dict(), self.program_fp,
                               self.intervals)
        path = self.store.store(self.key, payload)
        _cache_parsed(self.key, decode_trace(payload))
        obs = obs_lib.current()
        if obs.active:
            sampling = self.spec.sampling_dict()
            obs.emit("trace.record", bench=self.spec.bench, key=self.key,
                     schedule=schedule_tag(sampling),
                     intervals=len(self.intervals),
                     blocks=sum(len(iv["addrs"]) for iv in self.intervals),
                     bytes=path.stat().st_size)
            obs.metrics.inc("sample.trace_records", bench=self.spec.bench,
                            schedule=schedule_tag(sampling))


class ReplaySession:
    """Hands decoded intervals to the engine, falling back to live
    interpretation permanently on any alignment mismatch."""

    mode = "replay"

    def __init__(self, key: str, trace: FFTrace, spec) -> None:
        self.key = key
        self.trace = trace
        self.spec = spec
        self.live = False
        self.replayed = 0

    def interval_for(self, index: int, addr: int) -> Optional[FFInterval]:
        """The recorded interval the engine should replay next, or
        ``None`` (= interpret live) after any mismatch."""
        if self.live:
            return None
        intervals = self.trace.intervals
        interval = intervals[index] if 0 <= index < len(intervals) else None
        if interval is None or interval.start != addr:
            self.live = True
            obs = obs_lib.current()
            if obs.active:
                obs.emit("trace.mismatch", bench=self.spec.bench,
                         key=self.key, interval=index, resumed_at=addr,
                         recorded_start=(interval.start
                                         if interval is not None else None))
                obs.metrics.inc("sample.trace_mismatches",
                                bench=self.spec.bench)
            return None
        self.replayed += 1
        return interval

    def finish(self, run) -> None:
        obs = obs_lib.current()
        if obs.active:
            sampling = self.spec.sampling_dict()
            obs.emit("trace.replay", bench=self.spec.bench, key=self.key,
                     schedule=schedule_tag(sampling),
                     intervals=self.replayed, fell_back=self.live)
            obs.metrics.inc("sample.trace_replays", bench=self.spec.bench,
                            schedule=schedule_tag(sampling))


def _cache_parsed(key: str, trace: FFTrace) -> None:
    while len(_PARSED) >= _PARSED_CAP:
        _PARSED.pop(next(iter(_PARSED)))
    _PARSED[key] = trace


def open_trace_session(spec, store: Optional[FFTraceStore] = None):
    """The record-or-replay session for one sampled run, or ``None``
    when tracing is off or does not apply to the spec."""
    if store is None and not trace_enabled():
        return None
    key = trace_key(spec)
    if key is None:
        return None
    if store is None:
        store = FFTraceStore()
    trace = _PARSED.get(key)
    if trace is None:
        payload = store.load(key)
        if payload is not None:
            try:
                trace = decode_trace(payload)
            except (ValueError, KeyError, TypeError, IndexError):
                trace = None
        if trace is not None:
            _cache_parsed(key, trace)
    if trace is not None:
        return ReplaySession(key, trace, spec)
    from repro.harness.runner import cached_program

    program, __, __ = cached_program("edge", spec.bench, spec.scale)
    return RecordSession(key, store, spec, program_fingerprint(program))


def prewarm_partition(specs: Sequence) -> tuple[list, list]:
    """Split a cold batch into ``(recorders, rest)`` so a parallel
    fan-out interprets each fast-forward trajectory exactly once.

    One spec per trace group whose trace is not yet on disk goes into
    ``recorders`` (run first, in parallel across groups); everything
    else — ineligible specs, singleton groups, groups already traced —
    goes into ``rest`` and replays.  With tracing disabled the batch
    passes through untouched.
    """
    specs = list(specs)
    if not trace_enabled():
        return [], specs
    groups: dict[tuple, list] = {}
    order: list = []                     # (kind, payload) preserving input
    for spec in specs:
        group = trace_group(spec)
        if group is None:
            order.append(("spec", spec))
            continue
        members = groups.get(group)
        if members is None:
            members = groups[group] = []
            order.append(("group", group))
        members.append(spec)
    recorders: list = []
    rest: list = []
    store = None
    for kind, payload in order:
        if kind == "spec":
            rest.append(payload)
            continue
        members = groups[payload]
        if len(members) == 1:
            rest.extend(members)
            continue
        if store is None:
            store = FFTraceStore()
        key = trace_key(members[0])
        if key is not None and (key in _PARSED or store.contains(key)):
            rest.extend(members)
        else:
            recorders.append(members[0])
            rest.extend(members[1:])
    return recorders, rest
