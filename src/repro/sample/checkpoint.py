"""Checkpoints of a sampled run's fast-forward state.

A checkpoint captures everything the engine needs to resume a sampled
run at a block boundary: the functional architectural state (registers,
memory, resume address, exit history), the shadow microarchitecture,
the functional progress counters, and the windows measured so far.  It
is JSON-safe end to end, so sweeps can park warm-up work on disk and
resume deterministically — resuming from a checkpoint produces the
exact RunResult the uninterrupted run would have.

The embedded canonical job spec guards against resuming under a
different configuration.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Union

#: Bump when the checkpoint layout changes; old files then fail loudly.
CHECKPOINT_SCHEMA = 1


@dataclass
class Checkpoint:
    """One resumable snapshot of a :class:`~repro.sample.SampledRun`."""

    spec: dict                       # JobSpec.canonical() of the run
    sampling: dict                   # SamplingConfig.to_dict()
    addr: int                        # next block to execute
    ghist: int                       # global exit history at addr
    blocks: int                      # functional progress so far
    insts: int
    loads: int
    stores: int
    finished: bool
    regs: list
    memory: dict                     # FlatMemory.snapshot()
    shadow: dict                     # ShadowUarch.state_dict()
    windows: list = field(default_factory=list)
    dependence: list = field(default_factory=list)  # [label, lsq_id] pairs
    schema: int = CHECKPOINT_SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "spec": self.spec,
            "sampling": self.sampling,
            "addr": self.addr,
            "ghist": self.ghist,
            "blocks": self.blocks,
            "insts": self.insts,
            "loads": self.loads,
            "stores": self.stores,
            "finished": self.finished,
            "regs": self.regs,
            "memory": self.memory,
            "shadow": self.shadow,
            "windows": self.windows,
            "dependence": self.dependence,
        }

    @staticmethod
    def from_dict(data: dict) -> "Checkpoint":
        schema = data.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint schema {schema!r} != {CHECKPOINT_SCHEMA}")
        return Checkpoint(**{k: data[k] for k in (
            "spec", "sampling", "addr", "ghist", "blocks", "insts", "loads",
            "stores", "finished", "regs", "memory", "shadow", "windows",
            "dependence")})

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Atomically persist the checkpoint (temp file in the target
        directory, then ``os.replace``) — a killed worker can truncate
        the temp file, never the checkpoint itself."""
        path = pathlib.Path(path)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent if str(path.parent) else ".",
            prefix=f".{path.name}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def load(path: Union[str, pathlib.Path]) -> "Checkpoint":
        return Checkpoint.from_dict(
            json.loads(pathlib.Path(path).read_text()))
