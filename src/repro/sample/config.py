"""Sampling configuration: the shape of a sampled run.

A sampled run alternates *detailed windows* (the cycle-level simulator,
measuring IPC) with *fast-forward intervals* (the golden-model
interpreter executing blocks functionally while warming lightweight
shadow models of the predictor and cache hierarchy).  One
:class:`SamplingConfig` fixes that rhythm; it participates in the job
spec's content hash, so two runs that sample differently never share a
cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional


@dataclass(frozen=True)
class SamplingConfig:
    """Block-count parameters of one sampled run.

    Every window commits ``warmup_blocks`` blocks to re-steady the
    pipeline after injection (excluded from measurement), then
    ``window_blocks`` measured blocks; between windows the interpreter
    fast-forwards ``ff_blocks`` blocks.  The first window starts at the
    program entry, so a program shorter than one window degenerates to
    an exact detailed run.
    """

    ff_blocks: int = 448
    window_blocks: int = 40
    warmup_blocks: int = 8

    def validate(self) -> None:
        if self.ff_blocks < 1:
            raise ValueError("ff_blocks must be >= 1")
        if self.window_blocks < 1:
            raise ValueError("window_blocks must be >= 1")
        if self.warmup_blocks < 0:
            raise ValueError("warmup_blocks must be >= 0")

    def to_dict(self) -> dict:
        return {"ff_blocks": self.ff_blocks,
                "window_blocks": self.window_blocks,
                "warmup_blocks": self.warmup_blocks}

    @staticmethod
    def from_dict(data: Optional[Mapping[str, Any]]) -> Optional["SamplingConfig"]:
        if not data:
            return None
        cfg = SamplingConfig(**{k: int(v) for k, v in dict(data).items()})
        cfg.validate()
        return cfg
