"""Dynamic recomposition around failed cores (paper section 3).

The CLP claim this module reproduces: because composed processors share
no physical structures, losing a core costs *one core's capacity*, not
the processor — runtime software re-forms the composition on the
surviving cores and resumes the thread.

Recovery protocol, per victim processor, inside the failure event:

1. **Interrupt** — abandon every in-flight block through the normal
   halt flush, which repairs speculative predictor/RAS state; the
   architectural state sits exactly at the last committed block.
2. **Capture** — registers, the distributed RAS contents, the
   dependence-violation history, and the committed-path resume point
   (``last_commit_next``/``last_commit_ghist``) through the same
   transfer surfaces sampled simulation uses (``state_dict`` /
   in-place register copy / shared memory image).
3. **Re-form** — the largest placeable composition (power-of-two
   rectangle) no bigger than the old one, avoiding faulty and occupied
   cores; the new processor reuses the victim's cache context tag, so
   cache lines on surviving cores stay warm and the L2 directory stays
   coherent (caches are timing-only — no architectural data lives in
   a lost core).
4. **Resume** — after a modelled recovery latency (flush penalty +
   round-trip state migration across the mesh + banked register
   refill), the new processor starts at the resume point.

Events ``recompose.start``/``recompose.done``, the ``resil.recoveries``
counter, and a ``recovery`` profiler phase flow through ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.block import NUM_REGS
from repro.tflex.placement import SHAPES, rectangle


class CompositionLost(RuntimeError):
    """No fault-free region remains to recompose a processor."""


@dataclass
class RecoveryReport:
    """One recomposition: where, what it cost, and what it recovered."""

    cycle: int
    core: int                     # the core that failed
    old_cores: list[int]
    new_cores: list[int]
    recovery_cycles: int
    resumed_at: int
    blocks_lost: int              # in-flight blocks abandoned
    ipc_before: float
    ipc_after: Optional[float] = None   # filled when the run completes

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "core": self.core,
            "old_cores": list(self.old_cores),
            "new_cores": list(self.new_cores),
            "recovery_cycles": self.recovery_cycles,
            "resumed_at": self.resumed_at,
            "blocks_lost": self.blocks_lost,
            "ipc_before": self.ipc_before,
            "ipc_after": self.ipc_after,
        }


def choose_composition(cfg, target: int,
                       unavailable: set[int]) -> Optional[list[int]]:
    """Largest placeable power-of-two rectangle of at most ``target``
    cores that avoids ``unavailable``; None when even one core cannot
    be placed.  Scans sizes descending, origins row-major, so the
    choice is deterministic."""
    for size in sorted(SHAPES, reverse=True):
        if size > target:
            continue
        for oy in range(cfg.mesh_height):
            for ox in range(cfg.mesh_width):
                try:
                    cores = rectangle(cfg, size, (ox, oy))
                except ValueError:
                    continue
                if any(c in unavailable for c in cores):
                    continue
                return cores
    return None


def transfer_ras(old, new) -> None:
    """Move the distributed RAS contents between compositions of
    (possibly) different sizes: the youngest live entries survive, up
    to the new capacity — exactly the entries a deepening call stack
    would consult first."""
    state = old.state_dict()
    top, stack = state["top"], state["stack"]
    old_capacity = len(stack)
    live = min(top, old_capacity)          # overflow wraps clamp at capacity
    keep = min(live, new.capacity)
    new_stack = [0] * new.capacity
    for i in range(keep):
        new_stack[i] = stack[(top - keep + i) % old_capacity]
    new.load_state({"stack": new_stack, "top": keep})


class RecompositionEngine:
    """Rebuilds compositions around failed cores on one system."""

    def __init__(self, system) -> None:
        self.system = system
        self.obs = system.obs
        self.reports: list[RecoveryReport] = []
        #: Interrupted predecessors, oldest first (their stats are the
        #: per-segment record of the run).
        self.segments: list = []
        #: ctx -> live processor currently carrying that thread.
        self._current: dict[int, object] = {}
        #: ctx -> (addr, ghist) to resume from when nothing committed
        #: yet in the current segment.
        self._resume_points: dict[int, tuple[int, int]] = {}

    def register(self, proc, addr: Optional[int] = None,
                 ghist: int = 0) -> None:
        """Track a processor; ``addr`` is its segment entry point
        (defaults to the program entry)."""
        if addr is None:
            addr = proc.program.address_of(proc.program.entry)
        self._current[proc.ctx] = proc
        self._resume_points[proc.ctx] = (addr, ghist)

    def current(self, ctx: int):
        """The processor currently carrying thread ``ctx``."""
        return self._current[ctx]

    def finalize(self) -> None:
        """Fill post-recovery IPC into the reports (call after the
        run completes): report *i* separates segment *i* from its
        successor."""
        chain = self.segments + [self._current[ctx]
                                 for ctx in sorted(self._current)]
        for i, report in enumerate(self.reports):
            if i + 1 < len(chain):
                report.ipc_after = chain[i + 1].stats.ipc

    # -- failure handling ----------------------------------------------

    def on_core_failure(self, core_id: int) -> None:
        """A core died: recover every composition that used it."""
        victims = [p for p in self.system.procs
                   if not p.halted and core_id in p.core_ids]
        for proc in victims:
            prof = self.obs.profiler
            if prof.enabled:
                with prof.phase("recovery"):
                    self._recover(proc, core_id)
            else:
                self._recover(proc, core_id)

    def _recover(self, proc, core_id: int) -> None:
        system = self.system
        queue = system.queue
        now = queue.now
        obs = self.obs
        if obs.active:
            obs.emit("recompose.start", cycle=now, proc=proc.name,
                     core=core_id, inflight=len(proc.inflight))

        # 1. Interrupt: abandon in-flight blocks, halt at last commit.
        blocks_lost = len(proc.inflight)
        proc.interrupt()

        # 2. Capture architectural state through the transfer surfaces.
        regs = list(proc.regs)
        dependence = set(proc.dependence_set)
        if proc.stats.blocks_committed and proc.last_commit_next is not None:
            addr, ghist = proc.last_commit_next, proc.last_commit_ghist
        else:
            # Nothing committed in this segment yet: restart it.
            addr, ghist = self._resume_points[proc.ctx]
        system.decompose(proc)
        self.segments.append(proc)

        # 3. Re-form on surviving cores (same ctx keeps caches warm).
        unavailable = {c.id for c in system.cores if c.faulty or c.procs}
        cores = choose_composition(system.cfg, len(proc.core_ids),
                                   unavailable)
        if cores is None:
            faulty = sorted(c.id for c in system.cores if c.faulty)
            raise CompositionLost(
                f"no fault-free region left to recompose {proc.name} "
                f"(faulty cores: {faulty})")
        new_proc = system.compose(cores, proc.program, name=proc.name,
                                  ctx=proc.ctx)
        new_proc.memory = proc.memory          # shared committed image
        new_proc.regs[:] = regs                # banks alias the list
        new_proc.dependence_set |= dependence
        transfer_ras(proc.ras, new_proc.ras)
        if proc.store_sets is not None and new_proc.store_sets is not None:
            new_proc.store_sets = proc.store_sets

        # 4. Resume after the modelled recovery latency.
        latency = self._recovery_latency(proc, new_proc)
        resumed_at = now + latency
        report = RecoveryReport(
            cycle=now, core=core_id, old_cores=list(proc.core_ids),
            new_cores=list(cores), recovery_cycles=latency,
            resumed_at=resumed_at, blocks_lost=blocks_lost,
            ipc_before=proc.stats.ipc)
        self.reports.append(report)
        self._current[proc.ctx] = new_proc
        self._resume_points[proc.ctx] = (addr, ghist)
        queue.at(resumed_at, lambda: self._resume(new_proc, addr, ghist))
        if obs.active:
            obs.emit("recompose.done", cycle=now, proc=proc.name,
                     core=core_id, old_cores=list(proc.core_ids),
                     new_cores=list(cores), recovery_cycles=latency,
                     resumed_at=resumed_at, blocks_lost=blocks_lost)
            obs.metrics.inc("resil.recoveries")
            obs.metrics.inc("resil.recovery_cycles", latency)
            obs.metrics.inc("resil.blocks_lost", blocks_lost)

    @staticmethod
    def _resume(proc, addr: int, ghist: int) -> None:
        # A second failure can interrupt the new composition before its
        # resume fires; recovery then re-schedules on yet another
        # composition and this stale wake must do nothing.
        if proc.halted or proc.started:
            return
        proc.start(addr, ghist)

    def _recovery_latency(self, old, new) -> int:
        """Cycles from failure detection to the first new fetch:
        the misprediction-style flush penalty, a round trip of state
        migration across the worst-case old-to-new core distance, and
        the banked architectural-register refill."""
        cfg = self.system.cfg
        topology = self.system.topology
        span = max(topology.distance(a, b)
                   for a in old.core_ids for b in new.core_ids)
        reg_refill = -(-NUM_REGS // new.num_rf_banks)   # ceil division
        return cfg.flush_penalty + 2 * span * cfg.hop_latency + reg_refill
