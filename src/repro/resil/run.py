"""Fault-injected benchmark runs: the ``repro.resil`` entry point.

:class:`ResilientRun` wraps one edge-benchmark job with a
:class:`~repro.resil.faults.FaultSchedule` and produces the same
:class:`~repro.harness.runner.RunResult` shape as the full-detail
simulator — with an **empty** schedule the result is field-for-field
identical to :func:`repro.harness.runner._simulate_edge`, which is what
keeps the golden fixtures honest.

With faults, the run may span several processor *segments* (one per
recomposition).  Segment stats are merged into one :class:`ProcStats`
whose ``cycles`` is the whole-run wall clock, so IPC reflects the real
cost of the failures (lost in-flight work + recovery latency), and the
result carries a ``resil`` payload: the schedule, injected events,
per-recovery reports, and per-segment records.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.exec import JobSpec
from repro.harness.runner import RunResult, build_edge_config
from repro.power import EnergyModel
from repro.resil.faults import FaultSchedule
from repro.resil.injector import FaultInjector
from repro.resil.recompose import CompositionLost, RecompositionEngine, \
    choose_composition
from repro.tflex import TFlexSystem
from repro.tflex.stats import ProcStats
from repro.workloads import BENCHMARKS, verify_edge_run

#: Same cycle budget as the full-detail path in ``repro.harness``.
MAX_CYCLES = 30_000_000


class ResilientRun:
    """One edge-benchmark run under a fault schedule."""

    def __init__(self, spec: JobSpec,
                 schedule: Optional[FaultSchedule] = None) -> None:
        if spec.kind != "edge":
            raise ValueError(
                f"fault injection only supports edge jobs, not {spec.kind!r}")
        if spec.trips:
            raise ValueError("fault injection targets the composable "
                             "TFlex array, not the monolithic TRIPS "
                             "baseline")
        if spec.sampling:
            raise ValueError("fault injection and sampled simulation "
                             "cannot combine: a recomposition inside a "
                             "fast-forward region is undefined")
        self.spec = spec
        self.schedule = (schedule if schedule is not None
                         else FaultSchedule.from_spec_items(spec.faults))
        self.cfg, self.ncores = build_edge_config(spec)
        self.schedule.validate(self.cfg, max_cycles=MAX_CYCLES)

    def run(self) -> RunResult:
        spec = self.spec
        benchmark = BENCHMARKS[spec.bench]
        program, expected, kernel = benchmark.edge_program(spec.scale)

        system = TFlexSystem(self.cfg)
        engine = RecompositionEngine(system)
        injector = FaultInjector(system, self.schedule, engine=engine)
        injector.apply_boot_faults()

        # Initial composition: with no boot faults this is exactly the
        # ``rectangle(cfg, ncores)`` the fault-free path composes; with
        # dead cores it is the largest placeable survivor rectangle.
        faulty = {c.id for c in system.cores if c.faulty}
        cores = choose_composition(self.cfg, self.ncores, faulty)
        if cores is None:
            raise CompositionLost(
                f"boot faults leave no region for even a 1-core "
                f"composition (dead cores: {sorted(faulty)})")
        proc = system.compose(cores, program, name=spec.bench)
        engine.register(proc)
        injector.arm()

        system.run(max_cycles=MAX_CYCLES)
        engine.finalize()

        final = engine.current(proc.ctx)
        if spec.verify:
            # The differential check: the post-recovery memory image
            # must match the golden interpreter exactly.
            verify_edge_run(kernel, final.memory, expected)

        segments = engine.segments + [final]
        if len(segments) == 1:
            stats = final.stats
            cycles = stats.cycles
        else:
            stats = _merge_stats([s.stats for s in segments])
            # Whole-run wall clock, not the sum of segment spans — the
            # recovery gaps are dead time the merged IPC must pay for.
            stats.cycles = system.queue.now
            cycles = stats.cycles

        # Report the composition the run *ended* on — after a mid-run
        # kill that is the recomposed survivor set, which is what the
        # degradation curves plot.  Fault-free, it equals the request.
        granted = len(final.core_ids)
        dram_requests = system.dram.stats.requests
        power = EnergyModel().breakdown(
            stats.energy_events, cycles, granted,
            dram_requests=dram_requests)

        result = RunResult(
            bench=spec.bench, label=spec.label(), num_cores=granted,
            cycles=cycles, insts_committed=stats.insts_committed,
            stats=stats, power=power, dram_requests=dram_requests)
        if self.schedule:
            result.resil = self._payload(injector, engine, segments)
        return result

    def _payload(self, injector: FaultInjector,
                 engine: RecompositionEngine, segments: list) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "requested_cores": self.ncores,
            "boot_faulty": self.schedule.boot_dead_cores(),
            "injected": [e.to_dict() for e in injector.injected],
            "recoveries": [r.to_dict() for r in engine.reports],
            "segments": [
                {"cores": list(s.core_ids),
                 "cycles": s.stats.cycles,
                 "insts_committed": s.stats.insts_committed,
                 "blocks_committed": s.stats.blocks_committed,
                 "ipc": s.stats.ipc}
                for s in segments
            ],
        }


def _merge_stats(parts: list[ProcStats]) -> ProcStats:
    """Sum per-segment stats into one record (cycles overwritten by the
    caller with the wall clock)."""
    merged = ProcStats()
    for part in parts:
        for name in ProcStats._SCALAR_FIELDS:
            setattr(merged, name, getattr(merged, name) + getattr(part, name))
        for phase in ("fetch_latency", "commit_latency"):
            target = getattr(merged, phase)
            source = getattr(part, phase)
            target.samples += source.samples
            target.components += Counter(source.components)
        merged.energy_events += Counter(part.energy_events)
    return merged


def run_resilient(spec: JobSpec,
                  schedule: Optional[FaultSchedule] = None) -> RunResult:
    """Run one fault-injected job (the ``spec.faults`` routing target
    in :mod:`repro.harness.runner`)."""
    return ResilientRun(spec, schedule).run()
