"""repro.resil — fault injection and dynamic recomposition.

The paper's composability argument cuts both ways: if any power-of-two
rectangle of cores can be a processor, then losing a core should cost
one core's worth of capacity, not a processor.  This package makes that
claim testable:

* :mod:`repro.resil.faults` — deterministic, seeded fault schedules
  (dead-at-boot cores, transient mid-run core deaths, degraded NoC
  links) with exact JSON round-trip and content-hash-stable
  ``JobSpec`` encoding;
* :mod:`repro.resil.injector` — applies a schedule to a live system
  through narrow cold-path seams (fault-free runs stay bit-identical);
* :mod:`repro.resil.recompose` — on core loss, abandons in-flight
  blocks, captures architectural + warm state through the sampled-
  simulation transfer surfaces, re-forms the composition on surviving
  cores, and resumes;
* :mod:`repro.resil.run` — the ``RunResult``-producing driver behind
  ``JobSpec.faults`` and the ``repro resil`` degradation experiment.
"""

from repro.resil.faults import (FaultEvent, FaultSchedule, KINDS, NETS,
                                parse_inject)
from repro.resil.injector import FaultInjector
from repro.resil.recompose import (CompositionLost, RecompositionEngine,
                                   RecoveryReport, choose_composition,
                                   transfer_ras)
from repro.resil.run import MAX_CYCLES, ResilientRun, run_resilient

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "KINDS",
    "NETS",
    "parse_inject",
    "FaultInjector",
    "CompositionLost",
    "RecompositionEngine",
    "RecoveryReport",
    "choose_composition",
    "transfer_ras",
    "MAX_CYCLES",
    "ResilientRun",
    "run_resilient",
]
