"""Deterministic, seeded fault models for resilience experiments.

A :class:`FaultSchedule` is a pure value describing every fault a run
will experience:

* ``core_dead`` — the core is defective at boot and never joins a
  composition (manufacturing fault / field failure before the run);
* ``core_kill`` — the core dies at an exact simulated cycle while the
  system is running (transient field failure);
* ``link_slow`` — one directed mesh link survives in a degraded mode
  and costs extra cycles per traversal (marginal wire/router).

Schedules round-trip through JSON exactly and normalise to a canonical
event order, so two logically equal schedules compare, serialise, and
— via :meth:`FaultSchedule.spec_items` — *content-hash* equal inside a
:class:`repro.exec.JobSpec`.  Seeded generators (:meth:`boot_dead`)
derive fault sites from the workload :class:`~repro.workloads.data.Lcg`
so campaigns are reproducible across machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.workloads.data import Lcg

#: Recognised fault kinds, in canonical sort order.
KINDS = ("core_dead", "link_slow", "core_kill")

#: Networks a ``link_slow`` fault may degrade.
NETS = ("opn", "control", "both")


@dataclass(frozen=True)
class FaultEvent:
    """One fault: kind plus the fields that kind uses.

    ``core_dead`` uses ``core``; ``core_kill`` uses ``core`` and
    ``cycle``; ``link_slow`` uses ``link``, ``extra`` and ``net``.
    """

    kind: str
    core: Optional[int] = None
    cycle: Optional[int] = None
    link: Optional[tuple[int, int]] = None
    extra: int = 0
    net: str = "both"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {', '.join(KINDS)})")
        if self.kind in ("core_dead", "core_kill"):
            if self.core is None or self.core < 0:
                raise ValueError(f"{self.kind} needs a core index >= 0")
            if self.link is not None:
                raise ValueError(f"{self.kind} takes no link")
        if self.kind == "core_dead" and self.cycle is not None:
            raise ValueError("core_dead is a boot fault and takes no cycle "
                             "(use core_kill for a mid-run death)")
        if self.kind == "core_kill" and (self.cycle is None or self.cycle < 1):
            raise ValueError("core_kill needs a cycle >= 1 "
                             "(use core_dead for a boot fault)")
        if self.kind == "link_slow":
            if (self.link is None or len(self.link) != 2
                    or self.link[0] == self.link[1]):
                raise ValueError("link_slow needs a (src, dst) pair of "
                                 "distinct cores")
            object.__setattr__(self, "link", tuple(int(n) for n in self.link))
            if self.extra < 1:
                raise ValueError("link_slow needs extra latency >= 1")
            if self.net not in NETS:
                raise ValueError(f"unknown network {self.net!r} "
                                 f"(expected one of {', '.join(NETS)})")

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form carrying only the fields this kind uses."""
        data: dict = {"kind": self.kind}
        if self.kind == "core_dead":
            data["core"] = self.core
        elif self.kind == "core_kill":
            data["core"] = self.core
            data["cycle"] = self.cycle
        else:
            data["link"] = list(self.link)
            data["extra"] = self.extra
            data["net"] = self.net
        return data

    def canonical_json(self) -> str:
        """Deterministic single-line JSON — the ``JobSpec`` encoding."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @staticmethod
    def from_dict(data: dict) -> "FaultEvent":
        link = data.get("link")
        return FaultEvent(
            kind=data["kind"], core=data.get("core"),
            cycle=data.get("cycle"),
            link=tuple(link) if link is not None else None,
            extra=data.get("extra", 0), net=data.get("net", "both"))

    def sort_key(self) -> tuple:
        """Canonical schedule order: boot faults first (dead cores,
        then degraded links), then kills by cycle; ties by site."""
        return (KINDS.index(self.kind), self.cycle or 0, self.core or -1,
                self.link or (-1, -1), self.net, self.extra)


@dataclass(frozen=True)
class FaultSchedule:
    """A normalised, hashable set of faults for one run."""

    events: tuple = ()

    def __post_init__(self) -> None:
        ordered = sorted(self.events, key=FaultEvent.sort_key)
        # Duplicate core faults are idempotent — drop them so equal
        # schedules hash equal.  Duplicate link degradations stack
        # (each adds latency) and are kept.
        seen: set = set()
        normalised = []
        for event in ordered:
            if event.kind in ("core_dead", "core_kill"):
                if event in seen:
                    continue
                seen.add(event)
            normalised.append(event)
        object.__setattr__(self, "events", tuple(normalised))

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- views ---------------------------------------------------------

    def boot_dead_cores(self) -> list[int]:
        return [e.core for e in self.events if e.kind == "core_dead"]

    def kill_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == "core_kill"]

    def link_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == "link_slow"]

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.events]}

    @staticmethod
    def from_dict(data: dict) -> "FaultSchedule":
        return FaultSchedule(tuple(FaultEvent.from_dict(e)
                                   for e in data.get("events", ())))

    def spec_items(self) -> tuple[str, ...]:
        """The ``JobSpec.faults`` encoding: one canonical JSON string
        per event, in canonical order — logically equal schedules
        therefore produce byte-equal spec fields and equal content
        hashes."""
        return tuple(e.canonical_json() for e in self.events)

    @staticmethod
    def from_spec_items(items: Sequence[str]) -> "FaultSchedule":
        return FaultSchedule(tuple(FaultEvent.from_dict(json.loads(item))
                                   for item in items))

    # -- validation ----------------------------------------------------

    def validate(self, cfg, max_cycles: Optional[int] = None) -> None:
        """Check the schedule against a chip configuration.

        Raises ``ValueError`` with an actionable message when a fault
        references a core outside the chip, degrades a non-adjacent
        link, kills every core, or fires beyond the cycle budget.
        """
        num_cores = cfg.num_cores
        for event in self.events:
            if event.core is not None and event.core >= num_cores:
                raise ValueError(
                    f"fault targets core {event.core} but the chip has "
                    f"cores 0..{num_cores - 1}")
            if event.kind == "link_slow":
                src, dst = event.link
                if src >= num_cores or dst >= num_cores:
                    raise ValueError(
                        f"link ({src},{dst}) outside the {num_cores}-core "
                        f"chip")
                sx, sy = src % cfg.mesh_width, src // cfg.mesh_width
                dx, dy = dst % cfg.mesh_width, dst // cfg.mesh_width
                if abs(sx - dx) + abs(sy - dy) != 1:
                    raise ValueError(
                        f"({src},{dst}) is not a mesh link: cores are not "
                        f"adjacent on the {cfg.mesh_width}x{cfg.mesh_height} "
                        f"grid")
            if (event.kind == "core_kill" and max_cycles is not None
                    and event.cycle > max_cycles):
                raise ValueError(
                    f"core_kill at cycle {event.cycle} is beyond the "
                    f"{max_cycles}-cycle run budget and would never fire")
        dead = set(self.boot_dead_cores())
        if len(dead) >= num_cores:
            raise ValueError(
                f"{len(dead)} dead cores leave no survivor on a "
                f"{num_cores}-core chip")

    # -- seeded generators ---------------------------------------------

    @staticmethod
    def boot_dead(count: int, num_cores: int, seed: int) -> "FaultSchedule":
        """``count`` distinct cores dead at boot, drawn from a seeded
        permutation — the dead set for ``count + 1`` is a superset of
        the set for ``count``, so degradation sweeps shrink capacity
        monotonically."""
        if not 0 <= count < num_cores:
            raise ValueError(f"dead-core count {count} must be in "
                             f"[0, {num_cores - 1}]")
        order = _permutation(num_cores, seed)
        return FaultSchedule(tuple(FaultEvent("core_dead", core=c)
                                   for c in order[:count]))

    @staticmethod
    def single_kill(core: int, cycle: int) -> "FaultSchedule":
        return FaultSchedule((FaultEvent("core_kill", core=core,
                                         cycle=cycle),))


def _permutation(n: int, seed: int) -> list[int]:
    """Seeded Fisher-Yates shuffle of ``range(n)`` using the workload
    LCG (no dependence on Python's ``random`` module state)."""
    rng = Lcg(seed)
    order = list(range(n))
    for i in range(n - 1, 0, -1):
        j = rng.next() % (i + 1)
        order[i], order[j] = order[j], order[i]
    return order


def parse_inject(text: str) -> FaultEvent:
    """Parse one ``--inject`` CLI argument into a fault event.

    Grammar::

        dead:CORE              core dead at boot
        kill:CORE@CYCLE        core dies at the given cycle
        link:SRC-DST:EXTRA[:NET]   directed link degraded by EXTRA cycles
                                   (NET one of opn/control/both; default both)
    """
    kind, sep, rest = text.partition(":")
    if not sep:
        raise ValueError(
            f"{text!r} is not a fault spec — expected dead:CORE, "
            f"kill:CORE@CYCLE, or link:SRC-DST:EXTRA[:NET]")
    try:
        if kind == "dead":
            return FaultEvent("core_dead", core=int(rest))
        if kind == "kill":
            core_text, sep, cycle_text = rest.partition("@")
            if not sep:
                raise ValueError(
                    f"{text!r} is missing '@CYCLE' — a transient core "
                    f"death needs a cycle, e.g. kill:{core_text or 'N'}@5000 "
                    f"(use dead:{core_text or 'N'} for a boot fault)")
            return FaultEvent("core_kill", core=int(core_text),
                              cycle=int(cycle_text))
        if kind == "link":
            parts = rest.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{text!r} — expected link:SRC-DST:EXTRA[:NET], "
                    f"e.g. link:2-3:2 or link:2-3:2:opn")
            src_text, sep, dst_text = parts[0].partition("-")
            if not sep:
                raise ValueError(
                    f"{text!r} — the link endpoint pair must be "
                    f"SRC-DST, e.g. link:2-3:2")
            net = parts[2] if len(parts) == 3 else "both"
            return FaultEvent("link_slow",
                              link=(int(src_text), int(dst_text)),
                              extra=int(parts[1]), net=net)
    except ValueError as exc:
        # Re-raise int() failures with the full spec for context; our
        # own messages already carry it.
        if text in str(exc):
            raise
        raise ValueError(f"{text!r}: {exc}") from None
    raise ValueError(
        f"unknown fault kind {kind!r} in {text!r} — expected dead:, "
        f"kill:, or link:")
