"""Applies a :class:`FaultSchedule` to a live :class:`TFlexSystem`.

The injector touches the simulator only through three narrow seams, so
fault-free runs stay bit-identical to a system that never imported this
module:

* boot-dead cores set :attr:`Core.faulty` (cold code — the flag is only
  read at composition time);
* degraded links install :meth:`Network.degrade_link`, which rebinds
  the delay walk on that network instance only;
* mid-run kills are ordinary events on the system's
  :class:`~repro.tflex.events.EventQueue` — an empty schedule schedules
  nothing.

On a kill the injector marks the core faulty, emits ``fault.inject``,
and hands control to the :class:`~repro.resil.recompose.\
RecompositionEngine` (when attached) to rebuild the victim composition.
"""

from __future__ import annotations

from typing import Optional

from repro.resil.faults import FaultEvent, FaultSchedule


class FaultInjector:
    """Arms one schedule against one system (single use)."""

    def __init__(self, system, schedule: FaultSchedule,
                 engine=None) -> None:
        self.system = system
        self.schedule = schedule
        #: Recomposition engine notified on each core kill; None runs
        #: the faults without recovery (the victim composition
        #: deadlocks unless it halts first — useful only in tests).
        self.engine = engine
        #: Events actually applied (kills on already-faulty cores are
        #: skipped and not recorded).
        self.injected: list[FaultEvent] = []

    # -- boot faults ---------------------------------------------------

    def apply_boot_faults(self) -> None:
        """Mark dead cores and degrade links before composition."""
        for core_id in self.schedule.boot_dead_cores():
            self.system.cores[core_id].faulty = True
            self._note(FaultEvent("core_dead", core=core_id))
        for event in self.schedule.link_events():
            for net in self._nets(event.net):
                net.degrade_link(event.link, event.extra)
            self._note(event)

    def _nets(self, which: str) -> list:
        if which == "opn":
            return [self.system.opn]
        if which == "control":
            return [self.system.control]
        return [self.system.opn, self.system.control]

    # -- mid-run kills -------------------------------------------------

    def arm(self) -> None:
        """Schedule every ``core_kill`` on the event queue."""
        for event in self.schedule.kill_events():
            self.system.queue.at(event.cycle,
                                 lambda e=event: self._fire_kill(e))

    def _fire_kill(self, event: FaultEvent) -> None:
        core = self.system.cores[event.core]
        if core.faulty:
            return
        core.faulty = True
        self._note(event)
        if self.engine is not None:
            self.engine.on_core_failure(event.core)

    # -- observability -------------------------------------------------

    def _note(self, event: FaultEvent) -> None:
        self.injected.append(event)
        obs = self.system.obs
        if obs.active:
            obs.emit("fault.inject", cycle=self.system.queue.now,
                     fault=event.to_dict())
            obs.metrics.inc("resil.faults_injected", kind=event.kind)
