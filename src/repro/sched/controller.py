"""Dynamic core reallocation over a job stream (paper section 8).

The paper envisions run-time software growing and shrinking processors
as threads arrive, finish, and shift behaviour.  This module simulates
that control loop analytically: jobs progress at rates given by their
cores->performance functions (measured once, figure-6 style), and the
controller re-solves the allocation at every arrival and departure.

Policies:

* ``composable`` — the CLP: optimal DP allocation, re-run per event;
* ``symmetric`` — granularity re-chosen per event but equal for all
  active jobs (the VB-CMP discipline);
* ``fixed-k`` — a conventional CMP of k-core processors; jobs beyond
  the processor count wait in a FIFO queue.

Time is continuous; "work" is measured in *alone-seconds*: a job of
work 1.0 takes 1.0 time units when running at its best composition.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sched.allocator import (
    ALLOWED_SIZES,
    SpeedupTable,
    optimal_assignment,
    symmetric_best_assignment,
)


@dataclass
class Job:
    """One thread: which benchmark's speedup curve it follows, when it
    arrives, and how much work it carries (in alone-seconds)."""

    name: str
    bench: str
    arrival: float
    work: float

    # Filled by the simulation.
    start: Optional[float] = None
    finish: Optional[float] = None
    remaining: float = 0.0

    @property
    def turnaround(self) -> float:
        return self.finish - self.arrival

    @property
    def slowdown(self) -> float:
        """Turnaround relative to running alone with no waiting."""
        return self.turnaround / self.work


@dataclass
class AllocationEvent:
    """One reallocation decision in the trace."""

    time: float
    running: dict[str, int]            # job name -> cores granted
    waiting: list[str]
    cores_used: int
    #: Cores still alive at this decision (equals the chip size until
    #: a :class:`CoreFailure` shrinks it).
    capacity: int = 0


@dataclass(frozen=True)
class CoreFailure:
    """``cores`` cores die at ``time`` (and stay dead)."""

    time: float
    cores: int = 1

    def __post_init__(self) -> None:
        if self.time < 0 or self.cores < 1:
            raise ValueError("a failure needs time >= 0 and cores >= 1")


@dataclass
class ScheduleResult:
    jobs: list[Job]
    trace: list[AllocationEvent]
    makespan: float

    @property
    def mean_turnaround(self) -> float:
        return sum(j.turnaround for j in self.jobs) / len(self.jobs)

    @property
    def mean_slowdown(self) -> float:
        return sum(j.slowdown for j in self.jobs) / len(self.jobs)

    def utilization(self, total_cores: int) -> float:
        """Core-time granted / (total cores x makespan)."""
        if not self.trace or self.makespan == 0:
            return 0.0
        area = 0.0
        for i, event in enumerate(self.trace):
            end = self.trace[i + 1].time if i + 1 < len(self.trace) else self.makespan
            area += event.cores_used * (end - event.time)
        return area / (total_cores * self.makespan)


class ReallocationController:
    """Event-driven analytical scheduler simulation."""

    def __init__(self, table: SpeedupTable, total_cores: int = 32,
                 policy: str = "composable", granularity: int = 4,
                 allowed: Sequence[int] = ALLOWED_SIZES) -> None:
        if policy not in ("composable", "symmetric", "fixed"):
            raise ValueError(f"unknown policy {policy!r}")
        self.table = table
        self.total_cores = total_cores
        self.policy = policy
        self.granularity = granularity
        self.allowed = tuple(k for k in allowed if k <= total_cores)

    # ------------------------------------------------------------------
    # Allocation policies
    # ------------------------------------------------------------------

    def _allocate(self, active: list[Job],
                  capacity: Optional[int] = None,
                  ) -> tuple[dict[str, int], list[Job]]:
        """(granted cores per job name, jobs left waiting).

        ``capacity`` is the live core count — ``total_cores`` until
        failures shrink it.
        """
        if capacity is None:
            capacity = self.total_cores
        if not active or capacity <= 0:
            return {}, list(active)
        allowed = tuple(k for k in self.allowed if k <= capacity)
        if self.policy == "fixed":
            processors = capacity // self.granularity
            running = active[:processors]
            waiting = active[processors:]
            return {j.name: self.granularity for j in running}, waiting

        # Elastic policies admit as many jobs as fit at minimum size.
        admitted = capacity // min(allowed)
        running = active[:admitted]
        waiting = active[admitted:]
        apps = [j.bench for j in running]
        if self.policy == "composable":
            __, sizes = optimal_assignment(apps, self.table, capacity,
                                           allowed)
        else:
            __, sizes = symmetric_best_assignment(apps, self.table,
                                                  capacity, allowed)
            # symmetric_best may schedule fewer jobs than running.
            while len(sizes) < len(running):
                waiting.insert(0, running.pop())
                apps = [j.bench for j in running]
                __, sizes = symmetric_best_assignment(
                    apps, self.table, capacity, allowed)
        return {j.name: k for j, k in zip(running, sizes)}, waiting

    def _rate(self, job: Job, cores: int) -> float:
        """Progress in alone-seconds per second at this allocation."""
        return self.table.performance(job.bench, cores) / self.table.alone(job.bench)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[Job],
            failures: Sequence[CoreFailure] = ()) -> ScheduleResult:
        """Simulate the job stream; ``failures`` permanently remove
        cores at their times, and the controller re-solves the
        allocation at each one — the run-time half of the resilience
        story (``repro.resil`` recovers the *threads*; this layer
        re-plans the *chip*)."""
        jobs = sorted(jobs, key=lambda j: (j.arrival, j.name))
        for job in jobs:
            job.remaining = job.work
            job.start = None
            job.finish = None
        pending = list(jobs)
        faults = sorted(failures, key=lambda f: f.time)
        active: list[Job] = []
        trace: list[AllocationEvent] = []
        now = 0.0
        capacity = self.total_cores

        while pending or active:
            if not active and pending:
                now = max(now, pending[0].arrival)
            while pending and pending[0].arrival <= now + 1e-12:
                active.append(pending.pop(0))
            while faults and faults[0].time <= now + 1e-12:
                capacity = max(0, capacity - faults.pop(0).cores)

            granted, waiting = self._allocate(active, capacity)
            rates = {}
            for job in active:
                cores = granted.get(job.name, 0)
                rates[job.name] = self._rate(job, cores) if cores else 0.0
                if cores and job.start is None:
                    job.start = now
            trace.append(AllocationEvent(
                time=now, running=dict(granted),
                waiting=[j.name for j in waiting],
                cores_used=sum(granted.values()),
                capacity=capacity))

            # Next event: a completion, the next arrival, or a failure.
            horizon = pending[0].arrival if pending else float("inf")
            if faults:
                horizon = min(horizon, faults[0].time)
            next_done = float("inf")
            for job in active:
                if rates[job.name] > 0:
                    next_done = min(next_done, now + job.remaining / rates[job.name])
            if next_done == float("inf") and horizon == float("inf"):
                raise RuntimeError(
                    "no progress: all active jobs starved"
                    + (f" ({self.total_cores - capacity} cores failed)"
                       if capacity < self.total_cores else ""))
            step_to = min(next_done, horizon)

            for job in active:
                job.remaining -= rates[job.name] * (step_to - now)
            now = step_to
            finished = [j for j in active if j.remaining <= 1e-9]
            for job in finished:
                job.finish = now
                active.remove(job)

        return ScheduleResult(jobs=list(jobs), trace=trace, makespan=now)
