"""Weighted-speedup maximizing core allocation (paper section 7).

The paper's methodology: per-benchmark cores→performance functions are
measured once (figure 6), then an optimal dynamic-programming algorithm
assigns cores to the threads of a multiprogrammed workload to maximize
weighted speedup.  Comparators: fixed-granularity CMPs (every processor
k cores, CMP-k) and the hypothetical symmetric "variable best" CMP
(granularity chosen per workload but equal for all threads).

Weighted speedup follows Snavely & Tullsen: each thread contributes its
multiprogrammed performance relative to running *alone* (here: alone at
its best composition on the chip); a workload of m threads has WS <= m.
When a workload exceeds a fixed CMP's processor count, WS stays
constant, the paper's assumption for oversubscribed fixed machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional, Sequence

from repro.tflex.placement import pack


#: Composition sizes a thread may receive.
ALLOWED_SIZES = (1, 2, 4, 8, 16, 32)


@dataclass
class SpeedupTable:
    """Per-benchmark performance as a function of composition size.

    ``perf[bench][k]`` is a performance value (e.g. 1/cycles) for
    benchmark ``bench`` on ``k`` cores.
    """

    perf: dict[str, dict[int, float]]

    def performance(self, bench: str, cores: int) -> float:
        try:
            return self.perf[bench][cores]
        except KeyError:
            raise KeyError(f"no measurement for {bench!r} at {cores} cores") from None

    def alone(self, bench: str) -> float:
        """Best performance the benchmark achieves with the chip to itself."""
        return max(self.perf[bench].values())

    def best_size(self, bench: str) -> int:
        """Composition size achieving the alone performance."""
        sizes = self.perf[bench]
        return max(sizes, key=lambda k: (sizes[k], -k))

    def sizes(self) -> list[int]:
        first = next(iter(self.perf.values()))
        return sorted(first)


def weighted_speedup(apps: Sequence[str], sizes: Sequence[int],
                     table: SpeedupTable) -> float:
    """WS of an assignment: sum of per-thread relative performance."""
    if len(apps) != len(sizes):
        raise ValueError("one size per app required")
    return sum(
        table.performance(app, k) / table.alone(app)
        for app, k in zip(apps, sizes)
    )


def optimal_assignment(apps: Sequence[str], table: SpeedupTable,
                       total_cores: int = 32,
                       allowed: Sequence[int] = ALLOWED_SIZES,
                       ) -> tuple[float, list[int]]:
    """Maximize WS by dynamic programming over the core budget.

    Returns ``(ws, sizes)``.  Every thread receives at least the
    smallest allowed size; raises if the workload cannot fit.
    """
    allowed = sorted(set(allowed))
    if len(apps) * allowed[0] > total_cores:
        raise ValueError(
            f"{len(apps)} threads cannot fit in {total_cores} cores "
            f"at minimum size {allowed[0]}")

    # dp[c] = (ws, sizes) best over the first i apps using exactly <= c cores.
    NEG = float("-inf")
    dp: list[tuple[float, list[int]]] = [(0.0, [])] + [(NEG, [])] * total_cores
    for app in apps:
        new: list[tuple[float, list[int]]] = [(NEG, [])] * (total_cores + 1)
        for used in range(total_cores + 1):
            ws, sizes = dp[used]
            if ws == NEG:
                continue
            for k in allowed:
                if used + k > total_cores:
                    break
                gain = table.performance(app, k) / table.alone(app)
                candidate = ws + gain
                if candidate > new[used + k][0]:
                    new[used + k] = (candidate, sizes + [k])
        dp = new
    best = max(dp, key=lambda entry: entry[0])
    if best[0] == NEG:
        raise ValueError("no feasible assignment")
    return best


def brute_force_assignment(apps: Sequence[str], table: SpeedupTable,
                           total_cores: int = 32,
                           allowed: Sequence[int] = ALLOWED_SIZES,
                           ) -> tuple[float, list[int]]:
    """Exhaustive reference for testing the DP (exponential; small inputs)."""
    best_ws, best_sizes = float("-inf"), None
    for sizes in product(sorted(set(allowed)), repeat=len(apps)):
        if sum(sizes) > total_cores:
            continue
        ws = weighted_speedup(apps, sizes, table)
        if ws > best_ws:
            best_ws, best_sizes = ws, list(sizes)
    if best_sizes is None:
        raise ValueError("no feasible assignment")
    return best_ws, best_sizes


def fixed_cmp_assignment(apps: Sequence[str], table: SpeedupTable,
                         granularity: int, total_cores: int = 32,
                         ) -> tuple[float, list[int]]:
    """WS on a fixed CMP of ``total/granularity`` processors, each of
    ``granularity`` cores.

    With more threads than processors, WS stays constant (paper
    assumption): only the first ``processors`` threads contribute.
    """
    processors = total_cores // granularity
    if processors < 1:
        raise ValueError(f"granularity {granularity} exceeds {total_cores} cores")
    scheduled = list(apps[:processors])
    sizes = [granularity] * len(scheduled)
    return weighted_speedup(scheduled, sizes, table), sizes


def degraded_assignment(apps: Sequence[str], table: SpeedupTable,
                        cfg, dead: set[int],
                        allowed: Sequence[int] = ALLOWED_SIZES,
                        ) -> tuple[float, list[int], list[list[int]]]:
    """Optimal WS allocation on a chip with failed cores, placement-
    aware: the chosen sizes must actually pack as contiguous rectangles
    avoiding ``dead`` (the composability fault story — a dead core
    costs one core, but it can also fragment the mesh).

    Runs the DP at the surviving-core budget, then checks packability;
    on fragmentation, tightens the budget and re-solves.  Returns
    ``(ws, sizes, placements)``.
    """
    allowed = sorted(set(k for k in allowed if k <= cfg.num_cores))
    usable = cfg.num_cores - len(dead)
    floor = len(apps) * allowed[0]
    if floor > usable:
        raise ValueError(
            f"{len(apps)} threads cannot fit on {usable} surviving cores "
            f"at minimum size {allowed[0]} ({len(dead)} dead)")
    for budget in range(usable, floor - 1, -1):
        ws, sizes = optimal_assignment(apps, table, budget, allowed)
        try:
            placements = pack(cfg, sizes, avoid=dead)
        except ValueError:
            continue
        return ws, sizes, placements
    # Minimum-size singles always pack when they fit the survivor count.
    sizes = [allowed[0]] * len(apps)
    return (weighted_speedup(apps, sizes, table), sizes,
            pack(cfg, sizes, avoid=dead))


def surviving_processors(cfg, granularity: int, dead: set[int]) -> int:
    """Processors of a fixed-granularity CMP that survive ``dead``.

    A fixed CMP cannot recompose: any processor tile containing a dead
    core is lost whole — the asymmetry the degradation experiment
    plots against the composable array's one-core-per-fault cost.
    """
    tiles = pack(cfg, [granularity] * (cfg.num_cores // granularity))
    return sum(1 for tile in tiles if not set(tile) & dead)


def symmetric_best_assignment(apps: Sequence[str], table: SpeedupTable,
                              total_cores: int = 32,
                              allowed: Sequence[int] = ALLOWED_SIZES,
                              ) -> tuple[float, list[int]]:
    """The hypothetical VB CMP: granularity variable per workload, but
    every processor equal-sized.  Picks the best granularity."""
    best = (float("-inf"), [])
    for granularity in sorted(set(allowed)):
        if granularity > total_cores:
            continue
        ws, sizes = fixed_cmp_assignment(apps, table, granularity, total_cores)
        if ws > best[0]:
            best = (ws, sizes)
    return best
