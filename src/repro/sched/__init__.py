"""Core-to-thread allocation for multiprogrammed workloads (figure 10)."""

from repro.sched.allocator import (
    SpeedupTable,
    weighted_speedup,
    optimal_assignment,
    degraded_assignment,
    surviving_processors,
    fixed_cmp_assignment,
    symmetric_best_assignment,
    brute_force_assignment,
)
from repro.sched.controller import (
    AllocationEvent,
    CoreFailure,
    Job,
    ReallocationController,
    ScheduleResult,
)

__all__ = [
    "SpeedupTable",
    "weighted_speedup",
    "optimal_assignment",
    "degraded_assignment",
    "surviving_processors",
    "fixed_cmp_assignment",
    "symmetric_best_assignment",
    "brute_force_assignment",
    "AllocationEvent",
    "CoreFailure",
    "Job",
    "ReallocationController",
    "ScheduleResult",
]
