"""Central registry of every observability name the codebase may emit.

This module is the single source of truth for the obs vocabulary:

* :data:`EVENTS` — every ``kind`` the :class:`~repro.obs.bus.TraceBus`
  carries, mapped to a one-line description.
* :data:`METRICS` — every series name the
  :class:`~repro.obs.metrics.MetricsRegistry` records.
* :data:`PHASES` — the :class:`~repro.obs.profile.PhaseProfiler` phase
  vocabulary.

Two guards keep it honest:

* the static pass ``repro.analysis.obsnames`` (run by ``repro lint``)
  flags any ``obs.emit("name", ...)`` / ``metrics.inc("name", ...)``
  call site whose literal name is missing here, and any registry entry
  missing from docs/OBSERVABILITY.md;
* ``tests/obs/test_schema.py`` runs a small workload and asserts every
  name emitted at runtime (including dynamically formatted ones such as
  the ``tflex.*`` scalar flush) is registered.

Adding a new event or metric therefore means: emit it, register it
here, and document it in docs/OBSERVABILITY.md — the lint/tests fail
until all three agree.
"""

from __future__ import annotations

#: TraceBus event kinds -> one-line description.
EVENTS: dict[str, str] = {
    # Simulator (repro.tflex.system / processor)
    "block.fetch": "block fetch command issued to the owner core",
    "block.commit": "block committed (carries the pipeline timestamps)",
    "block.mispredict": "next-block prediction resolved wrong",
    "block.squash": "pipeline flush squashed in-flight blocks",
    "proc.halt": "a composed processor halted (final cycle count)",
    "sim.done": "the whole system finished simulating",
    # Exec engine (repro.exec.executor / pool / store)
    "job.start": "executor handed a job to a worker",
    "job.done": "job finished and its result was recorded",
    "job.retry": "job is being re-run after a worker crash",
    "job.timeout": "job exceeded its wall-clock budget and was killed",
    "job.cached": "job satisfied from the on-disk result store",
    "job.coalesced": "duplicate in-flight spec piggy-backed on a peer",
    "run.cache_hit": "in-process memo hit (repro.harness.runner)",
    "pool.spawn": "warm worker pool spawned a worker process",
    "pool.dispatch": "pool dispatched a job to a warm worker",
    "pool.respawn": "pool replaced a dead or stale worker",
    "pool.kill": "pool killed a worker (timeout or shutdown)",
    "pool.stop": "worker pool shut down",
    "cache.gc": "result-store garbage collection pass finished",
    # Fault injection / recomposition (repro.resil)
    "fault.inject": "a scheduled fault fired",
    "recompose.start": "recomposition around a failed core began",
    "recompose.done": "recomposition finished; substrate remapped",
    # Sampled simulation (repro.sample)
    "sample.window": "one detailed sampling window completed",
    "sample.ff": "one functional fast-forward segment executed",
    "sample.ff_replayed": "fast-forward segment satisfied by trace replay",
    "trace.record": "fast-forward trace recorded for reuse",
    "trace.replay": "fast-forward trace replayed into warm state",
    "trace.mismatch": "recorded trace failed validation; re-executed",
    # Composition search (repro.search)
    "search.start": "composition search started",
    "search.rung": "successive-halving rung completed",
    "search.best": "search selected the per-app BEST composition",
    # Metrics flush (repro.obs)
    "metrics.snapshot": "end-of-run dump of every metric series",
}

#: ProcStats scalar counters flushed as ``tflex.<field>`` on proc.halt.
#: Mirrors ``repro.tflex.stats.ProcStats._SCALAR_FIELDS`` — the runtime
#: drift test fails if the two sets diverge.
TFLEX_SCALARS: tuple[str, ...] = (
    "cycles",
    "blocks_committed",
    "insts_committed",
    "insts_fetched",
    "loads_executed",
    "stores_committed",
    "blocks_fetched",
    "blocks_squashed",
    "mispredictions",
    "violations",
    "replays",
    "nacks",
    "predictions",
    "predictions_correct",
    "inflight_integral",
)

#: Metric series names -> one-line description.
METRICS: dict[str, str] = {
    # Simulator scalars (per-proc counters, flushed on halt)
    **{f"tflex.{name}": f"ProcStats.{name} flushed on proc.halt"
       for name in TFLEX_SCALARS},
    "tflex.fetch_latency_blocks": "blocks in the fetch-latency breakdown",
    "tflex.commit_latency_blocks": "blocks in the commit-latency breakdown",
    "tflex.fetch_latency_cycles": "fetch-latency cycles by component",
    "tflex.commit_latency_cycles": "commit-latency cycles by component",
    "tflex.energy_events": "energy-model event counts by class",
    # Mesh networks (gauges per net label)
    "noc.messages": "messages injected into the mesh",
    "noc.hops": "total hop count across delivered messages",
    "noc.total_latency": "sum of per-message delivery latencies",
    "noc.contention_cycles": "cycles lost to link contention",
    "noc.local_deliveries": "messages delivered without entering the mesh",
    # Exec engine
    "exec.jobs": "jobs completed by the executor",
    "exec.retries": "jobs re-run after worker crashes",
    "exec.crashes": "worker crashes observed",
    "exec.timeouts": "jobs killed on wall-clock budget",
    "exec.coalesced": "duplicate specs coalesced in flight",
    "exec.timeout_unsupported": "timeout requested on a backend without kill",
    "exec.job_seconds": "histogram of per-job wall seconds",
    "exec.pool_reuse": "jobs served by an already-warm worker",
    "exec.worker_respawns": "warm workers replaced",
    "exec.gc_scanned": "result-store entries scanned by GC",
    "exec.gc_removed": "result-store entries deleted by GC",
    "exec.gc_bytes_freed": "bytes reclaimed by result-store GC",
    "run.cache_hits": "in-process memo hits",
    # Fault injection / recovery
    "resil.faults_injected": "faults fired by the schedule",
    "resil.recoveries": "successful recompositions",
    "resil.recovery_cycles": "cycles spent recovering",
    "resil.blocks_lost": "committed-block progress discarded on faults",
    # Sampled simulation
    "sample.windows": "detailed windows simulated",
    "sample.window_blocks": "blocks committed inside detailed windows",
    "sample.ff": "fast-forward segments executed functionally",
    "sample.ff_blocks": "blocks skipped via functional fast-forward",
    "sample.ff_replayed": "fast-forward segments satisfied from traces",
    "sample.ff_replayed_blocks": "blocks skipped via trace replay",
    "sample.trace_records": "fast-forward traces recorded",
    "sample.trace_replays": "fast-forward traces replayed",
    "sample.trace_mismatches": "recorded traces that failed validation",
    # Composition search
    "search.evals": "candidate evaluations (all rungs)",
    "search.eliminations": "candidates dropped by successive halving",
    "search.detailed_jobs": "full-detail confirmation jobs",
}

#: PhaseProfiler phase names (wall-clock attribution buckets).
PHASES: tuple[str, ...] = (
    "fetch",
    "issue",
    "execute",
    "commit",
    "noc",
    "lsq",
    "recovery",
    "sample.ff",
    "sample.ff_replay",
)

EVENT_NAMES: frozenset = frozenset(EVENTS)
METRIC_NAMES: frozenset = frozenset(METRICS)
PHASE_NAMES: frozenset = frozenset(PHASES)

__all__ = [
    "EVENTS",
    "EVENT_NAMES",
    "METRICS",
    "METRIC_NAMES",
    "PHASES",
    "PHASE_NAMES",
    "TFLEX_SCALARS",
]
