"""Structured event-trace bus with pluggable sinks.

Events are plain dicts with a ``kind`` string plus JSON-safe fields
(see docs/OBSERVABILITY.md for the kinds the simulator and the exec
engine emit).  A :class:`TraceBus` fans each event out to its attached
sinks; with no sinks attached, :meth:`TraceBus.emit` is a single
attribute test, so an instrumented hot path costs near nothing when
tracing is off — call sites additionally guard event-dict construction
behind ``Observability.active``.

Buses can be *forked*: a fork shares the parent's delivery (events
still reach every parent sink) while adding private sinks of its own.
``ComposedProcessor.enable_block_trace`` uses this to observe one
processor without globally enabling tracing.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Optional


class Sink:
    """Interface: receives event dicts; ``close`` flushes/releases."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(Sink):
    """Swallows everything (explicit no-op; buses with no sinks never
    even build the event dict)."""

    def emit(self, event: dict) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the last ``capacity`` events in memory — the test sink.

    ``kinds`` optionally restricts which event kinds are retained.
    """

    def __init__(self, capacity: Optional[int] = None,
                 kinds: Optional[tuple] = None) -> None:
        self.events: deque = deque(maxlen=capacity)
        self.kinds = tuple(kinds) if kinds is not None else None

    def emit(self, event: dict) -> None:
        if self.kinds is None or event.get("kind") in self.kinds:
            self.events.append(event)

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e.get("kind") == kind]

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink(Sink):
    """Invokes ``fn(event)`` per event, optionally filtered by kind."""

    def __init__(self, fn: Callable[[dict], None],
                 kinds: Optional[tuple] = None) -> None:
        self.fn = fn
        self.kinds = tuple(kinds) if kinds is not None else None

    def emit(self, event: dict) -> None:
        if self.kinds is None or event.get("kind") in self.kinds:
            self.fn(event)


class JsonlSink(Sink):
    """Appends one compact JSON object per event to a file — the run
    sink behind ``--trace-out``.  Events must be JSON-safe."""

    def __init__(self, path) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class TraceBus:
    """Fans events out to sinks; forkable for scoped observation."""

    def __init__(self, parent: Optional["TraceBus"] = None) -> None:
        self._sinks: list[Sink] = []
        self._parent = parent

    @property
    def active(self) -> bool:
        """True when at least one sink (here or up the fork chain) will
        see events."""
        if self._sinks:
            return True
        return self._parent.active if self._parent is not None else False

    def attach(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, kind: str, **fields) -> None:
        """Build and deliver one event.  Prefer guarding the call site
        with ``Observability.active`` so the kwargs dict is never built
        on the disabled path."""
        if not self.active:
            return
        event = {"kind": kind}
        event.update(fields)
        self.deliver(event)

    def deliver(self, event: dict) -> None:
        """Deliver an already-built event dict (fork fan-in path)."""
        for sink in self._sinks:
            sink.emit(event)
        if self._parent is not None:
            self._parent.deliver(event)

    def fork(self) -> "TraceBus":
        """A child bus: its events also reach this bus's sinks, but
        sinks attached to the child see only the child's events."""
        return TraceBus(parent=self)

    def close(self) -> None:
        """Close this bus's own sinks (not the parent's)."""
        for sink in self._sinks:
            sink.close()
