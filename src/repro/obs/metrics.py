"""Lightweight metrics: counters, gauges, histograms with labels.

A :class:`MetricsRegistry` holds named series.  A *series* is a metric
name plus a (possibly empty) set of ``key=value`` labels — the usual
Prometheus-style shape, e.g. ``noc.messages{net=opn}`` — stored as a
plain dict keyed by ``(name, sorted label items)``, so recording is one
dict lookup and one add.

Counters only go up; gauges hold the last value set; histograms keep
count/sum/min/max plus power-of-two bucket counts (bucket ``i`` counts
observations ``<= 2**i``), which is enough to answer "where does the
time go" without storing samples.

The registry is always safe to call; the *cost discipline* (skip the
call entirely when observability is off) lives with the caller — see
``repro.obs.Observability.active``.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: Histogram buckets: upper bounds 2**0 .. 2**N, plus an overflow slot.
HISTOGRAM_BUCKETS = 24


def series_key(name: str, labels: dict) -> tuple:
    """Canonical hashable identity of one labelled series."""
    if not labels:
        return (name, ())
    return (name, tuple(sorted(labels.items())))


def format_series(name: str, labels: tuple) -> str:
    """Human-readable series name: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bucket summary of a stream of non-negative observations."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (HISTOGRAM_BUCKETS + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = 0
        bound = 1.0
        while value > bound and index < HISTOGRAM_BUCKETS:
            bound *= 2.0
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "mean": self.mean, "buckets": list(self.buckets)}


class MetricsRegistry:
    """Counters, gauges, and histograms, each a set of labelled series."""

    def __init__(self) -> None:
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- recording -----------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a counter series (monotonic)."""
        key = series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to its latest value."""
        self._gauges[series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        key = series_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    # -- reading -------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        return self._counters.get(series_key(name, labels), 0.0)

    def gauge(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get(series_key(name, labels))

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self._histograms.get(series_key(name, labels))

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(v for (n, __), v in self._counters.items() if n == name)

    def series(self) -> Iterator[str]:
        """Every live series, formatted, in sorted order."""
        keys = (list(self._counters) + list(self._gauges)
                + list(self._histograms))
        for name, labels in sorted(keys):
            yield format_series(name, labels)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of every series (the ``metrics.snapshot``
        trace-event payload and the ``--metrics`` report substrate)."""
        return {
            "counters": {format_series(n, lb): v
                         for (n, lb), v in sorted(self._counters.items())},
            "gauges": {format_series(n, lb): v
                       for (n, lb), v in sorted(self._gauges.items())},
            "histograms": {format_series(n, lb): h.to_dict()
                           for (n, lb), h in sorted(self._histograms.items())},
        }

    def render(self) -> str:
        """Plain-text report, one series per line."""
        snap = self.snapshot()
        lines = []
        for series, value in snap["counters"].items():
            lines.append(f"{series}  {value:g}")
        for series, value in snap["gauges"].items():
            lines.append(f"{series}  {value:g}")
        for series, hist in snap["histograms"].items():
            lines.append(f"{series}  count={hist['count']} "
                         f"mean={hist['mean']:.6g} min={hist['min']:g} "
                         f"max={hist['max']:g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
