"""``repro.obs`` — unified observability: metrics, tracing, profiling.

Three small pieces, bundled by :class:`Observability`:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: labelled
  counter/gauge/histogram series with a JSON-safe ``snapshot()``.
* :mod:`repro.obs.bus` — :class:`TraceBus`: structured events fanned
  out to pluggable sinks (ring buffer for tests, JSONL file for runs),
  forkable for scoped observation.
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`: exclusive
  wall-clock seconds per simulation phase (where does *host* time go).

The simulator (:class:`repro.tflex.system.TFlexSystem`), the mesh
networks, and the exec engine all pick up the process-global instance
from :func:`current` unless handed one explicitly; the CLI's
``--trace-out``/``--metrics`` flags and ``python -m repro profile``
swap it via :func:`configure`.  With nothing configured, every hook is
gated on :attr:`Observability.active` and costs an attribute read —
see docs/OBSERVABILITY.md for the event schema and overhead notes.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.bus import (
    CallbackSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    Sink,
    TraceBus,
)
from repro.obs.metrics import Histogram, MetricsRegistry, format_series
from repro.obs.profile import PhaseProfiler


class Observability:
    """One bundle of registry + bus + profiler.

    ``active`` gates *both* event emission and metric recording: call
    sites do ``if obs.active: obs.emit(...)`` / ``obs.metrics.inc(...)``
    so the disabled path never builds an event dict or touches the
    registry.  The profiler has its own ``enabled`` flag because its
    hooks sit on hotter paths than per-block events.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 bus: Optional[TraceBus] = None,
                 profiler: Optional[PhaseProfiler] = None,
                 metrics_enabled: bool = False) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus if bus is not None else TraceBus()
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.metrics_enabled = metrics_enabled

    @property
    def active(self) -> bool:
        return (self.metrics_enabled or self.bus.active
                or self.profiler.enabled)

    def emit(self, kind: str, **fields) -> None:
        self.bus.emit(kind, **fields)

    def fork(self, *sinks: Sink) -> "Observability":
        """A scoped view: same registry and profiler, a forked bus with
        ``sinks`` attached.  Events emitted through the fork still reach
        every parent sink; the new sinks see only the fork's events."""
        child = TraceBus(parent=self.bus)
        for sink in sinks:
            child.attach(sink)
        return Observability(metrics=self.metrics, bus=child,
                             profiler=self.profiler,
                             metrics_enabled=self.metrics_enabled)

    def snapshot_event(self) -> dict:
        """The ``metrics.snapshot`` event payload (emitted by the CLI at
        the end of a traced run)."""
        return {"kind": "metrics.snapshot",
                "metrics": self.metrics.snapshot(),
                "profile": self.profiler.snapshot()}

    def close(self) -> None:
        self.bus.close()


#: Process-global instance; inactive until :func:`configure` is called.
_GLOBAL = Observability()


def current() -> Observability:
    """The process-global observability bundle."""
    return _GLOBAL


def configure(trace_path=None, metrics: bool = False,
              profile: bool = False) -> Observability:
    """Install a fresh global bundle.

    ``trace_path`` attaches a :class:`JsonlSink` writing one event per
    line; ``metrics`` turns on metric recording even without a trace
    sink; ``profile`` enables the wall-clock phase profiler.
    """
    global _GLOBAL
    _GLOBAL.close()
    obs = Observability(metrics_enabled=metrics or trace_path is not None)
    if trace_path is not None:
        obs.bus.attach(JsonlSink(trace_path))
    obs.profiler.enabled = profile
    _GLOBAL = obs
    return obs


def reset() -> Observability:
    """Close any configured sinks and restore the inactive default."""
    global _GLOBAL
    _GLOBAL.close()
    _GLOBAL = Observability()
    return _GLOBAL


__all__ = [
    "CallbackSink",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "Observability",
    "PhaseProfiler",
    "RingBufferSink",
    "Sink",
    "TraceBus",
    "configure",
    "current",
    "format_series",
    "reset",
]
