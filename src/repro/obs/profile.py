"""Wall-clock phase profiling for the simulator itself.

The cycle-level simulator is event-driven, so "where does simulation
time go" is invisible from cycle counts.  :class:`PhaseProfiler`
accumulates *host* wall-clock seconds per named phase (fetch, issue,
execute, commit, noc, lsq, ...) with exclusive-time accounting: when
phases nest, time spent in an inner phase is charged to the inner phase
only.

Disabled profilers hand out a shared no-op context manager; hot paths
additionally guard on :attr:`PhaseProfiler.enabled` so the disabled
cost is one attribute read.
"""

from __future__ import annotations

import time
from typing import Callable


class _NoopTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopTimer()


class _Timer:
    __slots__ = ("profiler", "name")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name

    def __enter__(self):
        profiler = self.profiler
        now = profiler.clock()
        stack = profiler._stack
        if stack:
            # Charge the parent for its elapsed slice, then restart it.
            parent_name, started = stack[-1]
            profiler._seconds[parent_name] = (
                profiler._seconds.get(parent_name, 0.0) + now - started)
            stack[-1] = (parent_name, now)
        stack.append((self.name, now))
        return self

    def __exit__(self, *exc):
        profiler = self.profiler
        now = profiler.clock()
        name, started = profiler._stack.pop()
        profiler._seconds[name] = profiler._seconds.get(name, 0.0) + now - started
        profiler._calls[name] = profiler._calls.get(name, 0) + 1
        if profiler._stack:
            parent_name, __ = profiler._stack[-1]
            profiler._stack[-1] = (parent_name, now)
        return False


class PhaseProfiler:
    """Accumulates exclusive wall-clock time per phase."""

    def __init__(self, enabled: bool = False,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self.clock = clock
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._stack: list[tuple[str, float]] = []

    def phase(self, name: str):
        """Context manager timing one phase (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return _Timer(self, name)

    # -- reading -------------------------------------------------------

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def snapshot(self) -> dict:
        """JSON-safe per-phase totals."""
        return {name: {"seconds": self._seconds[name],
                       "calls": self._calls.get(name, 0)}
                for name in sorted(self._seconds)}

    def table(self) -> str:
        """Plain-text profile, hottest phase first."""
        if not self._seconds:
            return "(no phases recorded)"
        total = self.total_seconds or 1e-12
        lines = [f"{'phase':<12} {'seconds':>10} {'share':>7} {'calls':>10}"]
        for name, secs in sorted(self._seconds.items(),
                                 key=lambda item: -item[1]):
            lines.append(f"{name:<12} {secs:>10.4f} {secs / total:>6.1%} "
                         f"{self._calls.get(name, 0):>10}")
        lines.append(f"{'TOTAL':<12} {self.total_seconds:>10.4f} "
                     f"{'100%':>7} {sum(self._calls.values()):>10}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._seconds.clear()
        self._calls.clear()
        self._stack.clear()
