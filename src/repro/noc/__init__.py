"""On-chip networks: 2D mesh topology and bandwidth-arbitrated links."""

from repro.noc.mesh import Topology, Network, NetworkStats
from repro.noc.router import RouterNetwork, RouterStats, Packet

__all__ = ["Topology", "Network", "NetworkStats",
           "RouterNetwork", "RouterStats", "Packet"]
