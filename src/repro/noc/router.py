"""Cycle-driven router-level mesh model.

The default simulator uses the link-reservation timing model
(:class:`repro.noc.mesh.Network`), which approximates contention without
simulating routers.  This module provides the detailed alternative: an
input-queued, dimension-order-routed mesh of 5-port routers with
round-robin output arbitration and credit-free bounded input queues.
It serves two purposes:

* validating the reservation model (the unit tests drive both with the
  same traffic and bound their divergence), and
* standalone network experiments (saturation sweeps, hotspot studies)
  without dragging in the processor model.

Single-flit packets, as in the TFlex operand network (an operand plus
routing metadata fits one flit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.noc.mesh import Topology


#: Port indices: local injection/ejection plus the four directions.
LOCAL, NORTH, SOUTH, EAST, WEST = range(5)
_OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


@dataclass
class Packet:
    """One single-flit packet."""

    src: int
    dst: int
    payload: object = None
    injected_at: int = 0
    delivered_at: Optional[int] = None
    hops: int = 0


@dataclass
class RouterStats:
    delivered: int = 0
    total_latency: int = 0
    total_hops: int = 0
    stalls: int = 0          # arbitration losses

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class _Router:
    """One 5-port input-queued router."""

    def __init__(self, node: int, topology: Topology, queue_depth: int) -> None:
        self.node = node
        self.topology = topology
        self.queue_depth = queue_depth
        self.inputs: list[deque[Packet]] = [deque() for __ in range(5)]
        self._rr = 0    # round-robin arbitration pointer

    def output_port(self, packet: Packet) -> int:
        """Dimension-order (X then Y) output port for a packet here."""
        x, y = self.topology.coord(self.node)
        dx, dy = self.topology.coord(packet.dst)
        if dx > x:
            return EAST
        if dx < x:
            return WEST
        if dy > y:
            return SOUTH
        if dy < y:
            return NORTH
        return LOCAL

    def has_room(self, port: int) -> bool:
        return len(self.inputs[port]) < self.queue_depth


class RouterNetwork:
    """A mesh of routers advanced one cycle at a time."""

    def __init__(self, topology: Topology, queue_depth: int = 4,
                 on_deliver: Optional[Callable[[Packet, int], None]] = None) -> None:
        self.topology = topology
        self.queue_depth = queue_depth
        self.on_deliver = on_deliver
        self.routers = [_Router(n, topology, queue_depth)
                        for n in range(topology.num_nodes)]
        self.stats = RouterStats()
        self.cycle = 0
        self._in_flight = 0

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------

    def inject(self, src: int, dst: int, payload: object = None) -> bool:
        """Offer a packet to the source router; False if it is full."""
        router = self.routers[src]
        if not router.has_room(LOCAL):
            return False
        packet = Packet(src=src, dst=dst, payload=payload,
                        injected_at=self.cycle)
        router.inputs[LOCAL].append(packet)
        self._in_flight += 1
        return True

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def step(self) -> list[Packet]:
        """Advance one cycle; returns packets delivered this cycle.

        Each router arbitrates its output ports among input queues
        round-robin; one packet per output port per cycle; a winning
        packet moves to the neighbour's input queue (or ejects).
        """
        self.cycle += 1
        moves: list[tuple[_Router, int, _Router, int]] = []   # (src,port, dst,port)
        ejected: list[Packet] = []

        for router in self.routers:
            # Collect head packets wanting each output port.
            claims: dict[int, list[int]] = {}
            for port in range(5):
                queue = router.inputs[port]
                if queue:
                    out = router.output_port(queue[0])
                    claims.setdefault(out, []).append(port)
            for out, claimants in claims.items():
                # Round-robin among claimant input ports.
                claimants.sort(key=lambda p: (p - router._rr) % 5)
                winner = claimants[0]
                self.stats.stalls += len(claimants) - 1
                if out == LOCAL:
                    packet = router.inputs[winner].popleft()
                    packet.delivered_at = self.cycle
                    packet.hops += 0
                    ejected.append(packet)
                    continue
                neighbour = self._neighbour(router.node, out)
                dest = self.routers[neighbour]
                in_port = _OPPOSITE[out]
                if dest.has_room(in_port):
                    moves.append((router, winner, dest, in_port))
                else:
                    self.stats.stalls += 1
            router._rr = (router._rr + 1) % 5

        for src_router, src_port, dst_router, dst_port in moves:
            packet = src_router.inputs[src_port].popleft()
            packet.hops += 1
            dst_router.inputs[dst_port].append(packet)

        for packet in ejected:
            self._in_flight -= 1
            self.stats.delivered += 1
            self.stats.total_latency += packet.delivered_at - packet.injected_at
            self.stats.total_hops += packet.hops
            if self.on_deliver is not None:
                self.on_deliver(packet, self.cycle)
        return ejected

    def run_until_drained(self, max_cycles: int = 100_000) -> int:
        """Step until no packets remain; returns cycles taken."""
        start = self.cycle
        while self._in_flight:
            if self.cycle - start > max_cycles:
                raise RuntimeError("router network did not drain")
            self.step()
        return self.cycle - start

    def _neighbour(self, node: int, port: int) -> int:
        x, y = self.topology.coord(node)
        if port == EAST:
            return self.topology.node(x + 1, y)
        if port == WEST:
            return self.topology.node(x - 1, y)
        if port == SOUTH:
            return self.topology.node(x, y + 1)
        return self.topology.node(x, y - 1)
