"""Two-dimensional mesh interconnect with per-link bandwidth arbitration.

TFlex cores are connected by 2D meshes (paper section 4.4): a control
network for fetch/commit/prediction traffic and an operand network (OPN)
for dataflow operands, with a single-cycle per-hop latency.  TFlex
doubles the operand network bandwidth relative to TRIPS (section 5),
modelled here as two channels per link.

The timing model is *link reservation*: a message traversing its
dimension-order (X-then-Y) path claims one channel of each link for
``hop_latency`` cycles (the full traversal of that hop; links are not
pipelined), at the earliest cycle the channel is free after the message
arrives at that hop.  This captures zero-load latency exactly (one cycle
per hop) and serializes competing messages on shared links, while
remaining cheap enough to simulate 32 cores in Python.  Unbounded router
buffering is assumed (no head-of-line blocking); DESIGN.md records this
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Topology:
    """A ``width`` x ``height`` grid of nodes, row-major numbered.

    Coordinates, pairwise distances, and dimension-order routes are pure
    functions of the (immutable) grid shape, so they are precomputed at
    construction (routes lazily, memoized on first use) — the network
    timing model queries them on every message.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        n = self.width * self.height
        coords = tuple((i % self.width, i // self.width) for i in range(n))
        dist = [0] * (n * n)
        for a, (ax, ay) in enumerate(coords):
            base = a * n
            for b, (bx, by) in enumerate(coords):
                dist[base + b] = abs(ax - bx) + abs(ay - by)
        # A frozen dataclass blocks normal assignment; these caches are
        # derived state, invisible to eq/repr/hash.
        object.__setattr__(self, "_num_nodes", n)
        object.__setattr__(self, "_coords", coords)
        object.__setattr__(self, "_dist", tuple(dist))
        object.__setattr__(self, "_routes", {})

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def coord(self, node: int) -> tuple[int, int]:
        """(x, y) coordinate of a node index."""
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} outside {self.width}x{self.height} mesh")
        return self._coords[node]

    def node(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def distance(self, a: int, b: int) -> int:
        """Manhattan hop count between two nodes."""
        n = self._num_nodes
        if 0 <= a < n and 0 <= b < n:
            return self._dist[a * n + b]
        bad = a if not 0 <= a < n else b
        raise ValueError(f"node {bad} outside {self.width}x{self.height} mesh")

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-order (X then Y) path as a list of directed links.

        Each link is ``(from_node, to_node)`` for adjacent nodes.
        """
        return list(self.routes_cached(src, dst))

    def routes_cached(self, src: int, dst: int) -> tuple[tuple[int, int], ...]:
        """Memoized dimension-order path (shared tuple — do not mutate)."""
        key = src * self._num_nodes + dst
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        links = []
        x, y = self.coord(src)
        dx, dy = self.coord(dst)
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self.node(x, y), self.node(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self.node(x, y), self.node(x, ny)))
            y = ny
        self._routes[key] = result = tuple(links)
        return result


@dataclass
class NetworkStats:
    """Aggregate traffic statistics for one network."""

    messages: int = 0
    hops: int = 0
    total_latency: int = 0
    contention_cycles: int = 0
    local_deliveries: int = 0

    def merge(self, other: "NetworkStats") -> None:
        self.messages += other.messages
        self.hops += other.hops
        self.total_latency += other.total_latency
        self.contention_cycles += other.contention_cycles
        self.local_deliveries += other.local_deliveries

    def to_metrics(self, metrics, **labels) -> None:
        """Export into a :class:`repro.obs.MetricsRegistry`.

        Gauges, not counters: the stats are already cumulative and a
        system may flush them after every ``run()`` (back-to-back runs),
        so the latest flush must overwrite, not double-count.
        """
        metrics.set_gauge("noc.messages", self.messages, **labels)
        metrics.set_gauge("noc.hops", self.hops, **labels)
        metrics.set_gauge("noc.total_latency", self.total_latency, **labels)
        metrics.set_gauge("noc.contention_cycles", self.contention_cycles,
                          **labels)
        metrics.set_gauge("noc.local_deliveries", self.local_deliveries,
                          **labels)


class Network:
    """Link-reservation mesh network.

    Args:
        topology: Grid shape.
        channels: Independent channels per directed link (bandwidth).
        hop_latency: Cycles per hop at zero load.
        name: For stats reporting.
        profiler: Optional :class:`repro.obs.PhaseProfiler`; when
            enabled, time spent routing/reserving is charged to the
            ``noc`` phase.
    """

    def __init__(self, topology: Topology, channels: int = 1,
                 hop_latency: int = 1, name: str = "net",
                 profiler=None) -> None:
        if channels < 1 or hop_latency < 1:
            raise ValueError("channels and hop_latency must be >= 1")
        self.topology = topology
        self.channels = channels
        self.hop_latency = hop_latency
        self.name = name
        self.profiler = profiler
        self.stats = NetworkStats()
        # Directed link -> per-channel next-free cycle.
        self._free: dict[tuple[int, int], list[int]] = {}
        # Directed link -> extra traversal cycles (fault injection).
        # Consulted only by ``_delay_degraded``, which replaces
        # ``_delay`` when the first degradation is installed.
        self._degraded: dict[tuple[int, int], int] = {}

    def delay(self, src: int, dst: int, now: int) -> int:
        """Arrival cycle of a message injected at ``now``.

        Reserves link bandwidth along the dimension-order path, so
        repeated calls model contention between concurrent messages.
        ``src == dst`` is free (local delivery).
        """
        prof = self.profiler
        if prof is not None and prof.enabled:
            with prof.phase("noc"):
                return self._delay(src, dst, now)
        return self._delay(src, dst, now)

    def _delay(self, src: int, dst: int, now: int) -> int:
        if src == dst:
            self.stats.local_deliveries += 1
            return now
        t = now
        stats = self.stats
        free_map = self._free
        hop_latency = self.hop_latency
        channels = self.channels
        path = self.topology.routes_cached(src, dst)
        for link in path:
            free = free_map.get(link)
            if free is None:
                free = [0] * channels
                free_map[link] = free
            # Pick the channel available soonest.
            best = 0
            for ch in range(1, channels):
                if free[ch] < free[best]:
                    best = ch
            start = t if free[best] <= t else free[best]
            stats.contention_cycles += start - t
            # The message occupies the channel for the full hop traversal
            # (links are not pipelined): the next message over this link
            # cannot start before this one has left it.
            free[best] = start + hop_latency
            t = start + hop_latency
        stats.messages += 1
        stats.hops += len(path)
        stats.total_latency += t - now
        return t

    def degrade_link(self, link: tuple[int, int], extra: int) -> None:
        """Permanently add ``extra`` cycles to one directed link's
        traversal (a marginal wire or router surviving in a degraded
        mode).  Repeated calls on the same link accumulate.

        This is the fault-injection seam: it rebinds ``_delay`` to the
        degraded walk *on this instance only*, so a fault-free network
        resolves ``_delay`` on the class and pays nothing — bit-identical
        timing with zero hot-path branches.
        """
        if extra < 1:
            raise ValueError("extra link latency must be >= 1")
        src, dst = link
        if self.topology.distance(src, dst) != 1:
            raise ValueError(
                f"({src},{dst}) is not a link: nodes are not mesh-adjacent")
        self._degraded[(src, dst)] = self._degraded.get((src, dst), 0) + extra
        self._delay = self._delay_degraded

    def _delay_degraded(self, src: int, dst: int, now: int) -> int:
        """The reservation walk of ``_delay`` with per-link extra
        latency; installed over ``_delay`` by :meth:`degrade_link`."""
        if src == dst:
            self.stats.local_deliveries += 1
            return now
        t = now
        stats = self.stats
        free_map = self._free
        hop_latency = self.hop_latency
        channels = self.channels
        degraded = self._degraded
        path = self.topology.routes_cached(src, dst)
        for link in path:
            free = free_map.get(link)
            if free is None:
                free = [0] * channels
                free_map[link] = free
            best = 0
            for ch in range(1, channels):
                if free[ch] < free[best]:
                    best = ch
            start = t if free[best] <= t else free[best]
            stats.contention_cycles += start - t
            traversal = hop_latency + degraded.get(link, 0)
            free[best] = start + traversal
            t = start + traversal
        stats.messages += 1
        stats.hops += len(path)
        stats.total_latency += t - now
        return t

    def zero_load_delay(self, src: int, dst: int) -> int:
        """Latency without contention (no reservation made)."""
        return self.topology.distance(src, dst) * self.hop_latency

    def reset_stats(self) -> None:
        self.stats = NetworkStats()

    @property
    def average_latency(self) -> float:
        if self.stats.messages == 0:
            return 0.0
        return self.stats.total_latency / self.stats.messages
