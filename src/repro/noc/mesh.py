"""Two-dimensional mesh interconnect with per-link bandwidth arbitration.

TFlex cores are connected by 2D meshes (paper section 4.4): a control
network for fetch/commit/prediction traffic and an operand network (OPN)
for dataflow operands, with a single-cycle per-hop latency.  TFlex
doubles the operand network bandwidth relative to TRIPS (section 5),
modelled here as two channels per link.

The timing model is *link reservation*: a message traversing its
dimension-order (X-then-Y) path claims one channel of each link for
``hop_latency`` cycles (the full traversal of that hop; links are not
pipelined), at the earliest cycle the channel is free after the message
arrives at that hop.  This captures zero-load latency exactly (one cycle
per hop) and serializes competing messages on shared links, while
remaining cheap enough to simulate 32 cores in Python.  Unbounded router
buffering is assumed (no head-of-line blocking); DESIGN.md records this
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Topology:
    """A ``width`` x ``height`` grid of nodes, row-major numbered."""

    width: int
    height: int

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coord(self, node: int) -> tuple[int, int]:
        """(x, y) coordinate of a node index."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside {self.width}x{self.height} mesh")
        return node % self.width, node // self.width

    def node(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def distance(self, a: int, b: int) -> int:
        """Manhattan hop count between two nodes."""
        ax, ay = self.coord(a)
        bx, by = self.coord(b)
        return abs(ax - bx) + abs(ay - by)

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-order (X then Y) path as a list of directed links.

        Each link is ``(from_node, to_node)`` for adjacent nodes.
        """
        links = []
        x, y = self.coord(src)
        dx, dy = self.coord(dst)
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self.node(x, y), self.node(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self.node(x, y), self.node(x, ny)))
            y = ny
        return links


@dataclass
class NetworkStats:
    """Aggregate traffic statistics for one network."""

    messages: int = 0
    hops: int = 0
    total_latency: int = 0
    contention_cycles: int = 0
    local_deliveries: int = 0

    def merge(self, other: "NetworkStats") -> None:
        self.messages += other.messages
        self.hops += other.hops
        self.total_latency += other.total_latency
        self.contention_cycles += other.contention_cycles
        self.local_deliveries += other.local_deliveries

    def to_metrics(self, metrics, **labels) -> None:
        """Export into a :class:`repro.obs.MetricsRegistry`.

        Gauges, not counters: the stats are already cumulative and a
        system may flush them after every ``run()`` (back-to-back runs),
        so the latest flush must overwrite, not double-count.
        """
        metrics.set_gauge("noc.messages", self.messages, **labels)
        metrics.set_gauge("noc.hops", self.hops, **labels)
        metrics.set_gauge("noc.total_latency", self.total_latency, **labels)
        metrics.set_gauge("noc.contention_cycles", self.contention_cycles,
                          **labels)
        metrics.set_gauge("noc.local_deliveries", self.local_deliveries,
                          **labels)


class Network:
    """Link-reservation mesh network.

    Args:
        topology: Grid shape.
        channels: Independent channels per directed link (bandwidth).
        hop_latency: Cycles per hop at zero load.
        name: For stats reporting.
        profiler: Optional :class:`repro.obs.PhaseProfiler`; when
            enabled, time spent routing/reserving is charged to the
            ``noc`` phase.
    """

    def __init__(self, topology: Topology, channels: int = 1,
                 hop_latency: int = 1, name: str = "net",
                 profiler=None) -> None:
        if channels < 1 or hop_latency < 1:
            raise ValueError("channels and hop_latency must be >= 1")
        self.topology = topology
        self.channels = channels
        self.hop_latency = hop_latency
        self.name = name
        self.profiler = profiler
        self.stats = NetworkStats()
        # Directed link -> per-channel next-free cycle.
        self._free: dict[tuple[int, int], list[int]] = {}

    def delay(self, src: int, dst: int, now: int) -> int:
        """Arrival cycle of a message injected at ``now``.

        Reserves link bandwidth along the dimension-order path, so
        repeated calls model contention between concurrent messages.
        ``src == dst`` is free (local delivery).
        """
        prof = self.profiler
        if prof is not None and prof.enabled:
            with prof.phase("noc"):
                return self._delay(src, dst, now)
        return self._delay(src, dst, now)

    def _delay(self, src: int, dst: int, now: int) -> int:
        if src == dst:
            self.stats.local_deliveries += 1
            return now
        t = now
        path = self.topology.route(src, dst)
        for link in path:
            free = self._free.get(link)
            if free is None:
                free = [0] * self.channels
                self._free[link] = free
            # Pick the channel available soonest.
            best = 0
            for ch in range(1, self.channels):
                if free[ch] < free[best]:
                    best = ch
            start = t if free[best] <= t else free[best]
            self.stats.contention_cycles += start - t
            # The message occupies the channel for the full hop traversal
            # (links are not pipelined): the next message over this link
            # cannot start before this one has left it.
            free[best] = start + self.hop_latency
            t = start + self.hop_latency
        self.stats.messages += 1
        self.stats.hops += len(path)
        self.stats.total_latency += t - now
        return t

    def zero_load_delay(self, src: int, dst: int) -> int:
        """Latency without contention (no reservation made)."""
        return self.topology.distance(src, dst) * self.hop_latency

    def reset_stats(self) -> None:
        self.stats = NetworkStats()

    @property
    def average_latency(self) -> float:
        if self.stats.messages == 0:
            return 0.0
        return self.stats.total_latency / self.stats.messages
