"""Lower kernel DSL programs to linear RISC code (figure-5 baseline).

Conventional lowering: real conditional branches for ``If``, counted
loops with a preheader guard, JAL/JR calls through a link register.
Loop unrolling honours the same kernel hints as the EDGE backend so the
two targets run comparable code.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.ast_nodes import (
    Assign, Bin, Call, Cmp, CMP_OPS, CompileError, Const, For, FtoI,
    Function, If, INT_BINOPS, FLOAT_BINOPS, ItoF, KernelProgram, Load,
    Return, Store, Un, Var,
)
from repro.risc.isa import RInst, RiscProgram


#: Registers 1..TEMP_BASE-1 hold named variables; TEMP_BASE..63 are
#: expression temporaries.
TEMP_BASE = 40


@dataclass
class _FuncRegs:
    entry: str
    params: dict[str, int]
    link: int
    ret: int
    vars: dict[str, int] = field(default_factory=dict)


def compile_risc(kernel: KernelProgram, name: Optional[str] = None) -> RiscProgram:
    """Compile a kernel to a linked RISC program."""
    kernel.validate()
    program = RiscProgram(name=name or kernel.name)

    array_base: dict[str, int] = {}
    for arr in kernel.arrays:
        values = list(arr.init or []) + [0] * (arr.size - len(arr.init or []))
        if arr.elem == "float":
            raw = b"".join(struct.pack("<d", float(v)) for v in values)
        else:
            raw = b"".join(struct.pack("<q", int(v)) for v in values)
        array_base[arr.name] = program.add_blob(raw)

    from repro.compiler.edge_backend import _assigned_vars

    regs: dict[str, _FuncRegs] = {}
    next_reg = 1

    def take() -> int:
        nonlocal next_reg
        reg = next_reg
        next_reg += 1
        if reg >= TEMP_BASE:
            raise CompileError(f"{kernel.name}: too many scalars for the RISC target")
        return reg

    for fn in kernel.functions:
        params = {p: take() for p in fn.params}
        info = _FuncRegs(entry=f"{fn.name}", params=params,
                         link=take(), ret=take(), vars=dict(params))
        for var in _assigned_vars(fn.body):
            if var not in info.vars:
                info.vars[var] = take()
        regs[fn.name] = info

    ordered = [kernel.function("main")] + [
        fn for fn in kernel.functions if fn.name != "main"]
    for fn in ordered:
        _RiscFunc(kernel, program, regs, array_base, fn).compile()
    program.validate()
    return program


class _RiscFunc:
    def __init__(self, kernel, program, regs, array_base, fn: Function) -> None:
        self.kernel = kernel
        self.program = program
        self.regs = regs
        self.info = regs[fn.name]
        self.array_base = array_base
        self.fn = fn
        self.types: dict[str, str] = {p: "int" for p in fn.params}
        self._temp = TEMP_BASE
        self._label_counter = 0
        self.returned = False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.fn.name}__{hint}{self._label_counter}"

    def _tmp(self) -> int:
        reg = self._temp
        self._temp += 1
        if reg > 63:
            raise CompileError(f"{self.fn.name}: expression too deep for temporaries")
        return reg

    def _mark(self) -> int:
        """Temporary high-water mark for stack-discipline reuse."""
        return self._temp

    def _settle(self, mark: int) -> int:
        """Reuse the register window above ``mark`` for this node's
        result: the result lands in register ``mark`` and every child
        temporary above it is released.  Safe because the machine reads
        sources before writing the destination."""
        self._temp = mark
        return self._tmp()

    def _reset_tmps(self) -> None:
        self._temp = TEMP_BASE

    def _emit(self, op: str, **kw) -> None:
        self.program.emit(RInst(op, **kw))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr) -> tuple[int, str]:
        """Returns (register, type); may clobber temporaries."""
        if isinstance(expr, Const):
            reg = self._tmp()
            self._emit("LI", rd=reg, imm=expr.value)
            return reg, expr.type
        if isinstance(expr, Var):
            if expr.name not in self.types:
                raise CompileError(f"{self.fn.name}: uninitialized {expr.name!r}")
            return self.info.vars[expr.name], self.types[expr.name]
        if isinstance(expr, Load):
            mark = self._mark()
            base, elem = self._address(expr.array, expr.index)
            reg = self._settle(mark)
            self._emit("LDF" if elem == "float" else "LD",
                       rd=reg, rs1=base, imm=0)
            return reg, elem
        if isinstance(expr, Bin):
            mark = self._mark()
            ra, ta = self._eval(expr.a)
            table = FLOAT_BINOPS if ta == "float" else INT_BINOPS
            if expr.op not in table:
                raise CompileError(f"{expr.op!r} undefined for {ta}")
            opname = table[expr.op]
            if ta == "int" and isinstance(expr.b, Const) and expr.b.type == "int":
                reg = self._settle(mark)
                self._emit(opname, rd=reg, rs1=ra, imm=expr.b.value)
                return reg, ta
            rb, tb = self._eval(expr.b)
            if tb != ta:
                raise CompileError(f"type mismatch in {expr.op}")
            reg = self._settle(mark)
            self._emit(opname, rd=reg, rs1=ra, rs2=rb)
            return reg, ta
        if isinstance(expr, Cmp):
            return self._eval_cmp(expr)
        if isinstance(expr, Un):
            return self._eval_un(expr)
        if isinstance(expr, ItoF):
            mark = self._mark()
            ra, __ = self._eval(expr.a)
            reg = self._settle(mark)
            self._emit("ITOF", rd=reg, rs1=ra)
            return reg, "float"
        if isinstance(expr, FtoI):
            mark = self._mark()
            ra, __ = self._eval(expr.a)
            reg = self._settle(mark)
            self._emit("FTOI", rd=reg, rs1=ra)
            return reg, "int"
        raise CompileError(f"unknown expression {expr!r}")

    def _eval_cmp(self, expr: Cmp) -> tuple[int, str]:
        mark = self._mark()
        ra, ta = self._eval(expr.a)
        if ta == "float":
            rb, __ = self._eval(expr.b)
            table = {"==": ("FEQ", False), "!=": None, "<": ("FLT", False),
                     "<=": ("FLE", False), ">": ("FLT", True), ">=": ("FLE", True)}
            entry = table.get(expr.op)
            if entry is None:
                reg = self._settle(mark)
                self._emit("FEQ", rd=reg, rs1=ra, rs2=rb)
                self._emit("XOR", rd=reg, rs1=reg, imm=1)
                return reg, "int"
            opname, swap = entry
            x, y = (rb, ra) if swap else (ra, rb)
            reg = self._settle(mark)
            self._emit(opname, rd=reg, rs1=x, rs2=y)
            return reg, "int"
        # Integer: SLT/SLE/SEQ/SNE direct; > and >= by swapping.
        mapping = {"==": ("SEQ", False), "!=": ("SNE", False),
                   "<": ("SLT", False), "<=": ("SLE", False),
                   ">": ("SLT", True), ">=": ("SLE", True)}
        opname, swap = mapping[expr.op]
        if not swap and isinstance(expr.b, Const) and expr.b.type == "int":
            reg = self._settle(mark)
            self._emit(opname, rd=reg, rs1=ra, imm=expr.b.value)
            return reg, "int"
        rb, __ = self._eval(expr.b)
        x, y = (rb, ra) if swap else (ra, rb)
        reg = self._settle(mark)
        self._emit(opname, rd=reg, rs1=x, rs2=y)
        return reg, "int"

    def _eval_un(self, expr: Un) -> tuple[int, str]:
        mark = self._mark()
        ra, ta = self._eval(expr.a)
        if expr.op == "-":
            reg = self._settle(mark)
            self._emit("FNEG" if ta == "float" else "NEG", rd=reg, rs1=ra)
            return reg, ta
        if expr.op == "~":
            reg = self._settle(mark)
            self._emit("NOT", rd=reg, rs1=ra)
            return reg, "int"
        if expr.op == "abs":
            if ta == "float":
                reg = self._settle(mark)
                self._emit("FABS", rd=reg, rs1=ra)
                return reg, "float"
            # Branchless integer abs: mask = a >> 63; (a ^ mask) - mask.
            # The mask register sits one above the settled result.
            reg = self._settle(mark)
            mask = self._tmp()
            self._emit("SRA", rd=mask, rs1=ra, imm=63)
            self._emit("XOR", rd=reg, rs1=ra, rs2=mask)
            self._emit("SUB", rd=reg, rs1=reg, rs2=mask)
            self._temp = reg + 1
            return reg, "int"
        if expr.op == "sqrt":
            reg = self._settle(mark)
            self._emit("FSQRT", rd=reg, rs1=ra)
            return reg, "float"
        raise CompileError(f"unknown unary {expr.op!r}")

    def _address(self, array_name: str, index) -> tuple[int, str]:
        arr = self.kernel.array(array_name)
        base = self.array_base[array_name]
        mark = self._mark()
        if isinstance(index, Const):
            reg = self._settle(mark)
            self._emit("LI", rd=reg, imm=base + int(index.value) * arr.elem_size)
            return reg, arr.elem
        ri, ti = self._eval(index)
        if ti != "int":
            raise CompileError(f"array index for {array_name} must be int")
        reg = self._settle(mark)
        self._emit("SHL", rd=reg, rs1=ri, imm=3)
        self._emit("ADD", rd=reg, rs1=reg, imm=base)
        return reg, arr.elem

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def compile(self) -> None:
        self.program.label(self.info.entry)
        self._emit_stmts(self.fn.body)
        if not self.returned:
            self._emit_return(Return())

    def _emit_stmts(self, stmts) -> None:
        for stmt in stmts:
            if self.returned:
                raise CompileError(f"{self.fn.name}: statements after return")
            self._reset_tmps()
            self._emit_stmt(stmt)

    def _emit_stmt(self, stmt) -> None:
        if isinstance(stmt, Assign):
            reg, vtype = self._eval(stmt.expr)
            known = self.types.get(stmt.var)
            if known is not None and known != vtype:
                raise CompileError(f"{self.fn.name}: {stmt.var} changes type")
            self.types[stmt.var] = vtype
            dest = self.info.vars[stmt.var]
            if dest != reg:
                self._emit("MOV", rd=dest, rs1=reg)
        elif isinstance(stmt, Store):
            base, elem = self._address(stmt.array, stmt.index)
            reg, vtype = self._eval(stmt.value)
            if vtype != elem:
                raise CompileError(f"{self.fn.name}: storing {vtype} into {elem} array")
            self._emit("STF" if elem == "float" else "ST",
                       rs1=base, rs2=reg, imm=0)
        elif isinstance(stmt, If):
            self._emit_if(stmt)
        elif isinstance(stmt, For):
            self._emit_for(stmt)
        elif isinstance(stmt, Call):
            self._emit_call(stmt)
        elif isinstance(stmt, Return):
            self._emit_return(stmt)
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def _emit_if(self, stmt: If) -> None:
        cond, ctype = self._eval(stmt.cond)
        if ctype != "int":
            raise CompileError(f"{self.fn.name}: if condition must be int")
        else_label = self._label("else")
        end_label = self._label("endif")
        self._emit("BEQZ", rs1=cond, target=else_label if stmt.else_ else end_label)
        self._emit_stmts_nested(stmt.then)
        if stmt.else_:
            self._emit("B", target=end_label)
            self.program.label(else_label)
            self._emit_stmts_nested(stmt.else_)
        self.program.label(end_label)

    def _emit_stmts_nested(self, stmts) -> None:
        for stmt in stmts:
            self._reset_tmps()
            self._emit_stmt(stmt)

    def _emit_for(self, stmt: For) -> None:
        if stmt.step <= 0:
            raise CompileError(f"{self.fn.name}: loop step must be positive")
        var_reg = self.info.vars[stmt.var]
        start, stype = self._eval(stmt.start)
        if stype != "int":
            raise CompileError(f"{self.fn.name}: loop bounds must be int")
        self.types[stmt.var] = "int"
        if start != var_reg:
            self._emit("MOV", rd=var_reg, rs1=start)

        unroll = self._unroll_factor(stmt)
        head = self._label("loop")
        exit_label = self._label("endloop")

        # Preheader guard.
        end_reg, __ = self._eval(stmt.end)
        guard = self._tmp()
        self._emit("SLT", rd=guard, rs1=var_reg, rs2=end_reg)
        self._emit("BEQZ", rs1=guard, target=exit_label)

        self.program.label(head)
        for __copy in range(unroll):
            self._emit_stmts_nested(stmt.body)
            self._reset_tmps()
            self._emit("ADD", rd=var_reg, rs1=var_reg, imm=stmt.step)
        self._reset_tmps()
        end_reg, __t = self._eval(stmt.end)
        again = self._tmp()
        self._emit("SLT", rd=again, rs1=var_reg, rs2=end_reg)
        self._emit("BNEZ", rs1=again, target=head)
        self.program.label(exit_label)

    def _unroll_factor(self, stmt: For) -> int:
        unroll = max(1, stmt.unroll)
        if not (isinstance(stmt.start, Const) and isinstance(stmt.end, Const)):
            return 1
        trip = max(0, (int(stmt.end.value) - int(stmt.start.value)
                       + stmt.step - 1) // stmt.step)
        while unroll > 1 and trip % unroll != 0:
            unroll //= 2
        return max(1, unroll)

    def _emit_call(self, stmt: Call) -> None:
        if stmt.func not in self.regs:
            raise CompileError(f"{self.fn.name}: call to unknown {stmt.func!r}")
        callee = self.regs[stmt.func]
        callee_fn = self.kernel.function(stmt.func)
        if len(stmt.args) != len(callee_fn.params):
            raise CompileError(f"{self.fn.name}: bad arity calling {stmt.func}")
        for param, arg in zip(callee_fn.params, stmt.args):
            reg, __ = self._eval(arg)
            if callee.params[param] != reg:
                self._emit("MOV", rd=callee.params[param], rs1=reg)
        self._emit("JAL", rd=callee.link, target=callee.entry)
        if stmt.dest is not None:
            self.types[stmt.dest] = callee_fn.returns
            self._emit("MOV", rd=self.info.vars[stmt.dest], rs1=callee.ret)

    def _emit_return(self, stmt: Return) -> None:
        if stmt.expr is not None:
            reg, vtype = self._eval(stmt.expr)
            if vtype != self.fn.returns:
                raise CompileError(f"{self.fn.name}: returns {vtype}, "
                                   f"declared {self.fn.returns}")
            if reg != self.info.ret:
                self._emit("MOV", rd=self.info.ret, rs1=reg)
        if self.fn.name == "main":
            self._emit("HALT")
        else:
            self._emit("JR", rs1=self.info.link)
        self.returned = True
