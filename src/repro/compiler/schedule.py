"""Instruction placement: scheduling blocks for a target composition.

Under the composition interleaving hash, instruction *i* of a block
executes on participating core ``i mod N`` (paper section 4.4) — so
renumbering instructions is *placement*: it decides which core runs
each instruction and therefore how many operand-network hops each
dataflow edge crosses.  The paper's toolchain scheduled programs
assuming a 32-core processor and noted that running on fewer cores
loses little; this module provides the equivalent pass.

The greedy list scheduler processes instructions in dependence
(topological) order and tries to place each consumer on the core of the
producer that feeds it, subject to per-core slot counts staying
balanced (each core owns slots ``c, c+N, c+2N, ...`` and a block has at
most ``ceil(size/N)`` slots per core).  Renumbering rewrites every
dataflow target; reads, writes, LSQ ids, and semantics are unchanged,
which the tests check by golden-model differential execution.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.isa.block import Block, ReadSlot
from repro.isa.instruction import Instruction, Target, TargetKind
from repro.isa.program import Program


def _consumers(block: Block) -> dict[int, list[int]]:
    """iid -> iids of instructions consuming its result."""
    out: dict[int, list[int]] = {i: [] for i in range(block.size)}
    for inst in block.insts:
        for target in inst.targets:
            if target.kind is TargetKind.INST:
                out[inst.iid].append(target.index)
    return out


def _producers(block: Block) -> dict[int, list[int]]:
    """iid -> iids of instructions feeding its operands."""
    out: dict[int, list[int]] = {i: [] for i in range(block.size)}
    for inst in block.insts:
        for target in inst.targets:
            if target.kind is TargetKind.INST:
                out[target.index].append(inst.iid)
    return out


def place_block(block: Block, num_cores: int) -> Block:
    """Renumber a block's instructions for an N-core composition.

    Returns a new, validated block; the identity placement is returned
    unchanged for single-core targets.
    """
    n = block.size
    if num_cores <= 1 or n <= 1:
        return block

    producers = _producers(block)
    consumers = _consumers(block)

    # Topological order (blocks are DAGs on the dataflow edges; predicate
    # and operand edges both count).
    indegree = {i: len(producers[i]) for i in range(n)}
    ready = sorted(i for i in range(n) if indegree[i] == 0)
    topo: list[int] = []
    while ready:
        iid = ready.pop(0)
        topo.append(iid)
        for consumer in consumers[iid]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                # Keep deterministic order.
                lo = 0
                while lo < len(ready) and ready[lo] < consumer:
                    lo += 1
                ready.insert(lo, consumer)
    if len(topo) != n:
        # Cyclic targets should be impossible; fall back to identity.
        return block

    slots_per_core = -(-n // num_cores)
    used = [0] * num_cores           # slots taken per core
    core_of: dict[int, int] = {}

    def pick_core(iid: int) -> int:
        # Prefer the core of the producer whose value arrives last
        # (approximated by placement order: the most recently placed).
        candidates = [core_of[p] for p in producers[iid] if p in core_of]
        for core in reversed(candidates):
            if used[core] < slots_per_core:
                return core
        # Else: least-loaded core (ties to the lowest index).
        return min(range(num_cores), key=lambda c: (used[c], c))

    # Assign slot numbers: core c owns iids c, c+N, c+2N, ...
    new_iid: dict[int, int] = {}
    for iid in topo:
        core = pick_core(iid)
        new_iid[iid] = core + num_cores * used[core]
        used[core] += 1
        core_of[iid] = core

    # Compact: some cores may be underfull, leaving gaps beyond `n`.
    taken = sorted(new_iid.values())
    compact = {slot: rank for rank, slot in enumerate(taken)}
    mapping = {old: compact[slot] for old, slot in new_iid.items()}

    def remap_target(target: Target) -> Target:
        if target.kind is TargetKind.INST:
            return Target(TargetKind.INST, mapping[target.index], target.slot)
        return target

    new_insts: list[Optional[Instruction]] = [None] * n
    for inst in block.insts:
        new_insts[mapping[inst.iid]] = replace(
            inst, iid=mapping[inst.iid],
            targets=tuple(remap_target(t) for t in inst.targets))
    new_reads = [
        ReadSlot(index=r.index, reg=r.reg,
                 targets=tuple(remap_target(t) for t in r.targets))
        for r in block.reads
    ]
    placed = Block(label=block.label, insts=new_insts, reads=new_reads,
                   writes=list(block.writes), comment=block.comment)
    placed.validate()
    return placed


def place_program(program: Program, num_cores: int) -> Program:
    """Schedule every block of a program for an N-core composition."""
    placed = Program(entry=program.entry, name=program.name,
                     data=dict(program.data), reg_init=dict(program.reg_init))
    for label in program.order:
        placed.add_block(place_block(program.blocks[label], num_cores))
    placed.validate()
    return placed


def cross_core_edges(block: Block, num_cores: int) -> int:
    """Dataflow edges whose producer and consumer land on different
    cores under the interleaving hash (the placement cost metric)."""
    count = 0
    for inst in block.insts:
        for target in inst.targets:
            if target.kind is TargetKind.INST:
                if inst.iid % num_cores != target.index % num_cores:
                    count += 1
    return count
