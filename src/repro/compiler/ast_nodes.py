"""AST of the kernel DSL.

Types are ``"int"`` (64-bit two's complement) and ``"float"`` (IEEE
double).  Expressions are side-effect free; loads may read any address
(out-of-bounds reads return zero — flat memory semantics), which lets
the EDGE backend hoist them speculatively as the TRIPS compiler does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


class CompileError(Exception):
    """The kernel violates a DSL or target constraint."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Const:
    """Literal; type inferred from the Python value."""

    value: Union[int, float]

    @property
    def type(self) -> str:
        return "float" if isinstance(self.value, float) else "int"


@dataclass(frozen=True)
class Var:
    """Scalar variable reference."""

    name: str


@dataclass(frozen=True)
class Load:
    """Array element read: ``array[index]``."""

    array: str
    index: "Expr"


#: Integer binary operators and their EDGE/RISC mnemonic stems.
INT_BINOPS = {"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
              "&": "AND", "|": "OR", "^": "XOR", "<<": "SHL", ">>": "SHR"}
FLOAT_BINOPS = {"+": "FADD", "-": "FSUB", "*": "FMUL", "/": "FDIV"}
CMP_OPS = {"==": "TEQ", "!=": "TNE", "<": "TLT", "<=": "TLE",
           ">": "TGT", ">=": "TGE"}


@dataclass(frozen=True)
class Bin:
    """Arithmetic/logical binary operation (operand types must match)."""

    op: str
    a: "Expr"
    b: "Expr"


@dataclass(frozen=True)
class Cmp:
    """Comparison producing an int 0/1."""

    op: str
    a: "Expr"
    b: "Expr"


@dataclass(frozen=True)
class Un:
    """Unary operation: ``-`` (neg), ``~`` (not), ``abs``, ``sqrt`` (float)."""

    op: str
    a: "Expr"


@dataclass(frozen=True)
class ItoF:
    a: "Expr"


@dataclass(frozen=True)
class FtoI:
    a: "Expr"


Expr = Union[Const, Var, Load, Bin, Cmp, Un, ItoF, FtoI]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass
class Assign:
    var: str
    expr: Expr


@dataclass
class Store:
    """Array element write: ``array[index] = value``."""

    array: str
    index: Expr
    value: Expr


@dataclass
class If:
    cond: Expr
    then: list
    else_: list = field(default_factory=list)


@dataclass
class For:
    """Counted loop: ``for var in range(start, end, step)``.

    ``unroll`` is a hint; the EDGE backend honours it when the trip
    count is a compile-time constant divisible by the factor (and the
    unrolled body fits the block limits), otherwise it falls back.
    """

    var: str
    start: Expr
    end: Expr
    body: list = field(default_factory=list)
    step: int = 1
    unroll: int = 1


@dataclass
class Call:
    """Call a kernel function; ``dest`` receives its return value."""

    func: str
    args: list
    dest: Optional[str] = None


@dataclass
class Return:
    expr: Optional[Expr] = None


Stmt = Union[Assign, Store, If, For, Call, Return]


# ----------------------------------------------------------------------
# Program containers
# ----------------------------------------------------------------------

@dataclass
class Array:
    """A named array bound to a data-segment region at link time."""

    name: str
    elem: str                    # "int" | "float"
    size: int
    init: Optional[Sequence] = None

    @property
    def elem_size(self) -> int:
        return 8


@dataclass
class Function:
    """One kernel function; ``main`` is the program entry."""

    name: str
    params: list[str] = field(default_factory=list)
    body: list = field(default_factory=list)
    returns: str = "int"         # return type (ignored for void use)


@dataclass
class KernelProgram:
    """A complete DSL program: arrays + functions, entry = ``main``."""

    name: str
    arrays: list[Array] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise CompileError(f"{self.name}: no function {name!r}")

    def array(self, name: str) -> Array:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise CompileError(f"{self.name}: no array {name!r}")

    def validate(self) -> None:
        names = [f.name for f in self.functions]
        if "main" not in names:
            raise CompileError(f"{self.name}: no main function")
        if len(set(names)) != len(names):
            raise CompileError(f"{self.name}: duplicate function names")
        anames = [a.name for a in self.arrays]
        if len(set(anames)) != len(anames):
            raise CompileError(f"{self.name}: duplicate array names")
        for arr in self.arrays:
            if arr.elem not in ("int", "float"):
                raise CompileError(f"{self.name}: array {arr.name} elem {arr.elem}")
            if arr.init is not None and len(arr.init) > arr.size:
                raise CompileError(f"{self.name}: array {arr.name} init too long")


# ----------------------------------------------------------------------
# Type checking helpers (shared by both backends)
# ----------------------------------------------------------------------

def infer_type(expr: Expr, var_types: dict[str, str],
               program: KernelProgram) -> str:
    """Infer and check an expression's type."""
    if isinstance(expr, Const):
        return expr.type
    if isinstance(expr, Var):
        if expr.name not in var_types:
            raise CompileError(f"use of uninitialized variable {expr.name!r}")
        return var_types[expr.name]
    if isinstance(expr, Load):
        infer_type(expr.index, var_types, program)
        return program.array(expr.array).elem
    if isinstance(expr, Bin):
        ta = infer_type(expr.a, var_types, program)
        tb = infer_type(expr.b, var_types, program)
        if ta != tb:
            raise CompileError(f"type mismatch in {expr.op}: {ta} vs {tb}")
        table = FLOAT_BINOPS if ta == "float" else INT_BINOPS
        if expr.op not in table:
            raise CompileError(f"operator {expr.op!r} not defined for {ta}")
        return ta
    if isinstance(expr, Cmp):
        ta = infer_type(expr.a, var_types, program)
        tb = infer_type(expr.b, var_types, program)
        if ta != tb:
            raise CompileError(f"type mismatch in {expr.op}: {ta} vs {tb}")
        if expr.op not in CMP_OPS:
            raise CompileError(f"unknown comparison {expr.op!r}")
        return "int"
    if isinstance(expr, Un):
        ta = infer_type(expr.a, var_types, program)
        if expr.op == "sqrt" and ta != "float":
            raise CompileError("sqrt requires a float operand")
        if expr.op == "~" and ta != "int":
            raise CompileError("~ requires an int operand")
        if expr.op not in ("-", "~", "abs", "sqrt"):
            raise CompileError(f"unknown unary {expr.op!r}")
        return ta
    if isinstance(expr, ItoF):
        if infer_type(expr.a, var_types, program) != "int":
            raise CompileError("ItoF requires an int operand")
        return "float"
    if isinstance(expr, FtoI):
        if infer_type(expr.a, var_types, program) != "float":
            raise CompileError("FtoI requires a float operand")
        return "int"
    raise CompileError(f"unknown expression node {expr!r}")
