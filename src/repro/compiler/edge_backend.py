"""Lower kernel DSL programs to EDGE hyperblocks.

The backend mirrors the structure of the TRIPS compiler's back end:

* **If-conversion with flat predicates.**  Conditions are evaluated
  speculatively as ordinary 0/1 dataflow values; nested path conditions
  are ANDed.  Conditional scalar assignments become predicate-merged MOV
  pairs (:meth:`BlockBuilder.phi`), conditional stores become a
  predicated store plus a NULL store on the complementary path — which
  keeps every declared block output resolvable on every dynamic path
  (the completion contract of section 4.6).
* **Loop unrolling** by the kernel's hint, when the trip count is a
  compile-time constant divisible by the factor and the unrolled body
  fits the block limits; the factor degrades gracefully otherwise.
* **Block splitting.**  Straight-line regions that exceed the soft
  capacity limits (128 instructions, 32 reads/writes/LSQ slots, with
  margin for MOV-tree legalization) are split into chained blocks; live
  scalars travel through registers.
* **Calls** use the CALLO/RET convention: the caller writes argument
  registers and a link register holding the sequential-next block
  address (what the RAS predicts), and the callee returns through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.ast_nodes import (
    Array, Assign, Bin, Call, Cmp, CMP_OPS, CompileError, Const, For,
    FLOAT_BINOPS, FtoI, Function, If, INT_BINOPS, ItoF, KernelProgram, Load,
    Return, Store, Un, Var, infer_type,
)
from repro.isa.block import NUM_REGS
from repro.isa.builder import BlockBuilder, BlockTooLarge, Port
from repro.isa.program import Program


#: Soft capacity limits, leaving headroom for MOV-tree legalization and
#: the end-of-block write/branch sequence.
INST_SOFT_LIMIT = 100
LSQ_SOFT_LIMIT = 28
WRITE_SOFT_LIMIT = 26


@dataclass
class _FuncInfo:
    """Register assignment of one function."""

    name: str
    entry_label: str
    param_regs: dict[str, int]
    link_reg: int
    ret_reg: int
    var_regs: dict[str, int] = field(default_factory=dict)


def _assigned_vars(stmts) -> list[str]:
    """Variables assigned anywhere in a statement list, in first-assignment order."""
    seen: list[str] = []

    def note(name: str) -> None:
        if name not in seen:
            seen.append(name)

    def walk(statements) -> None:
        for stmt in statements:
            if isinstance(stmt, Assign):
                note(stmt.var)
            elif isinstance(stmt, For):
                note(stmt.var)
                walk(stmt.body)
            elif isinstance(stmt, If):
                walk(stmt.then)
                walk(stmt.else_)
            elif isinstance(stmt, Call) and stmt.dest is not None:
                note(stmt.dest)

    walk(stmts)
    return seen


def compile_edge(kernel: KernelProgram, name: Optional[str] = None) -> Program:
    """Compile a kernel to a linked EDGE program."""
    kernel.validate()
    program = Program(entry="", name=name or kernel.name)

    # Lay out arrays in the data segment.
    array_base: dict[str, int] = {}
    for arr in kernel.arrays:
        if arr.init is not None:
            values = list(arr.init) + [0] * (arr.size - len(arr.init))
            if arr.elem == "float":
                base = program.add_doubles([float(v) for v in values])
            else:
                base = program.add_words([int(v) for v in values])
        else:
            base = program.alloc_data(arr.size * arr.elem_size)
        array_base[arr.name] = base

    # Allocate registers: params, link, return, then locals, per function.
    infos: dict[str, _FuncInfo] = {}
    next_reg = 1
    for fn in kernel.functions:
        param_regs = {}
        for param in fn.params:
            param_regs[param] = next_reg
            next_reg += 1
        link_reg = next_reg
        ret_reg = next_reg + 1
        next_reg += 2
        info = _FuncInfo(name=fn.name, entry_label=f"{fn.name}_0",
                         param_regs=param_regs, link_reg=link_reg,
                         ret_reg=ret_reg, var_regs=dict(param_regs))
        for var in _assigned_vars(fn.body):
            if var not in info.var_regs:
                info.var_regs[var] = next_reg
                next_reg += 1
        infos[fn.name] = info
    if next_reg > NUM_REGS:
        raise CompileError(
            f"{kernel.name}: needs {next_reg} registers (> {NUM_REGS}); "
            "reduce scalar count")

    # main first (entry), then the other functions.
    ordered = [kernel.function("main")] + [
        fn for fn in kernel.functions if fn.name != "main"]
    for fn in ordered:
        _EdgeFunc(kernel, program, infos, array_base, fn).compile()
    program.entry = infos["main"].entry_label
    program.validate()
    return program


class _EdgeFunc:
    """Compiles one function into a chain of hyperblocks."""

    def __init__(self, kernel: KernelProgram, program: Program,
                 infos: dict[str, _FuncInfo], array_base: dict[str, int],
                 fn: Function) -> None:
        self.kernel = kernel
        self.program = program
        self.infos = infos
        self.info = infos[fn.name]
        self.array_base = array_base
        self.fn = fn
        self.types: dict[str, str] = {p: "int" for p in fn.params}
        self.builder: Optional[BlockBuilder] = None
        self.vals: dict[str, Port] = {}
        self.dirty: set[str] = set()
        self.cse: dict = {}
        self.label_counter = 1          # label 0 is the entry block
        self.path: Optional[Port] = None
        self.returned = False

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def _label(self) -> str:
        label = f"{self.fn.name}_{self.label_counter}"
        self.label_counter += 1
        return label

    def _open(self, label: str) -> None:
        self.builder = BlockBuilder(label)
        self.vals = {}
        self.dirty = set()
        self.cse = {}

    def _flush_dirty(self) -> None:
        for var in sorted(self.dirty):
            self.builder.write(self.info.var_regs[var], self.vals[var])

    def _close_jump(self, target: str) -> None:
        self._flush_dirty()
        self.builder.branch("BRO", target=target, exit_id=0)
        self.program.add_block(self.builder.build())
        self.builder = None

    def _close_cond(self, pred: Port, if_true: str, if_false: str) -> None:
        self._flush_dirty()
        self.builder.branch("BRO", target=if_true, exit_id=0, pred=(pred, True))
        self.builder.branch("BRO", target=if_false, exit_id=1, pred=(pred, False))
        self.program.add_block(self.builder.build())
        self.builder = None

    def _split(self) -> None:
        """End the current block and continue in a fresh one."""
        assert self.path is None, "cannot split inside a predicated region"
        label = self._label()
        self._close_jump(label)
        self._open(label)

    def _ensure_capacity(self, insts: int, mem: int) -> None:
        """Split the block if the next statement may not fit."""
        if self.path is not None:
            return
        # legalized_size, not size: a CSE-shared value fanning out to
        # many consumers owes MOV-tree instructions that build() will
        # append, and they count against BLOCK_MAX_INSTS too.
        if (self.builder.legalized_size + insts > INST_SOFT_LIMIT
                or self.builder.lsq_slots_used + mem > LSQ_SOFT_LIMIT
                or len(self.dirty) >= WRITE_SOFT_LIMIT):
            if self.builder.size > 0:
                self._split()

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------

    def _get(self, var: str) -> Port:
        if var not in self.vals:
            if var not in self.info.var_regs:
                raise CompileError(f"{self.fn.name}: unknown variable {var!r}")
            self.vals[var] = self.builder.read(self.info.var_regs[var])
        return self.vals[var]

    def _set(self, var: str, port: Port, vtype: str) -> None:
        known = self.types.get(var)
        if known is not None and known != vtype:
            raise CompileError(f"{self.fn.name}: {var} changes type {known}->{vtype}")
        self.types[var] = vtype
        self.vals[var] = port
        self.dirty.add(var)

    # ------------------------------------------------------------------
    # Expression lowering (with per-block CSE on pure operations)
    # ------------------------------------------------------------------

    def _eval(self, expr) -> tuple[Port, str]:
        b = self.builder
        if isinstance(expr, Const):
            key = ("const", expr.value, expr.type)
            if key not in self.cse:
                self.cse[key] = b.movi(expr.value)
            return self.cse[key], expr.type
        if isinstance(expr, Var):
            if expr.name not in self.types:
                raise CompileError(f"{self.fn.name}: use of uninitialized {expr.name!r}")
            return self._get(expr.name), self.types[expr.name]
        if isinstance(expr, Load):
            return self._eval_load(expr)
        if isinstance(expr, Bin):
            return self._eval_bin(expr)
        if isinstance(expr, Cmp):
            return self._eval_cmp(expr)
        if isinstance(expr, Un):
            return self._eval_un(expr)
        if isinstance(expr, ItoF):
            port, vtype = self._eval(expr.a)
            if vtype != "int":
                raise CompileError("ItoF requires int")
            return self._memo(("itof", port), lambda: b.op("ITOF", port)), "float"
        if isinstance(expr, FtoI):
            port, vtype = self._eval(expr.a)
            if vtype != "float":
                raise CompileError("FtoI requires float")
            return self._memo(("ftoi", port), lambda: b.op("FTOI", port)), "int"
        raise CompileError(f"unknown expression {expr!r}")

    def _memo(self, key, make) -> Port:
        if key not in self.cse:
            self.cse[key] = make()
        return self.cse[key]

    def _eval_bin(self, expr: Bin) -> tuple[Port, str]:
        b = self.builder
        pa, ta = self._eval(expr.a)
        if ta == "float":
            if expr.op not in FLOAT_BINOPS:
                raise CompileError(f"{expr.op!r} undefined for float")
            pb, tb = self._eval(expr.b)
            if tb != "float":
                raise CompileError(f"type mismatch in {expr.op}")
            opname = FLOAT_BINOPS[expr.op]
            return self._memo((opname, pa, pb), lambda: b.op(opname, pa, pb)), "float"
        if expr.op not in INT_BINOPS:
            raise CompileError(f"{expr.op!r} undefined for int")
        opname = INT_BINOPS[expr.op]
        if isinstance(expr.b, Const) and expr.b.type == "int":
            imm = expr.b.value
            return self._memo((opname + "I", pa, imm),
                              lambda: b.op(opname + "I", pa, imm=imm)), "int"
        pb, tb = self._eval(expr.b)
        if tb != "int":
            raise CompileError(f"type mismatch in {expr.op}")
        return self._memo((opname, pa, pb), lambda: b.op(opname, pa, pb)), "int"

    def _eval_cmp(self, expr: Cmp) -> tuple[Port, str]:
        b = self.builder
        pa, ta = self._eval(expr.a)
        if ta == "float":
            pb, tb = self._eval(expr.b)
            if tb != "float":
                raise CompileError(f"type mismatch in {expr.op}")
            # Float tests: ==, <, <= native; others by operand swap.
            table = {"==": ("FTEQ", False), "<": ("FTLT", False),
                     "<=": ("FTLE", False), ">": ("FTLT", True),
                     ">=": ("FTLE", True), "!=": None}
            entry = table.get(expr.op)
            if entry is None:
                eq = self._memo(("FTEQ", pa, pb), lambda: b.op("FTEQ", pa, pb))
                return self._memo(("notf", eq), lambda: b.op("XORI", eq, imm=1)), "int"
            opname, swap = entry
            x, y = (pb, pa) if swap else (pa, pb)
            return self._memo((opname, x, y), lambda: b.op(opname, x, y)), "int"
        opname = CMP_OPS[expr.op]
        if isinstance(expr.b, Const) and expr.b.type == "int":
            imm = expr.b.value
            return self._memo((opname + "I", pa, imm),
                              lambda: b.op(opname + "I", pa, imm=imm)), "int"
        pb, tb = self._eval(expr.b)
        if tb != "int":
            raise CompileError(f"type mismatch in {expr.op}")
        return self._memo((opname, pa, pb), lambda: b.op(opname, pa, pb)), "int"

    def _eval_un(self, expr: Un) -> tuple[Port, str]:
        b = self.builder
        port, vtype = self._eval(expr.a)
        if expr.op == "-":
            opname = "FNEG" if vtype == "float" else "NEG"
            return self._memo((opname, port), lambda: b.op(opname, port)), vtype
        if expr.op == "~":
            return self._memo(("NOT", port), lambda: b.op("NOT", port)), "int"
        if expr.op == "abs":
            if vtype == "float":
                return self._memo(("FABS", port), lambda: b.op("FABS", port)), "float"
            # Integer abs: predicate-merged negate.
            def make():
                is_neg = b.op("TLTI", port, imm=0)
                return b.phi(is_neg, b.op("NEG", port, pred=(is_neg, True)),
                             b.mov(port, pred=(is_neg, False)))
            return self._memo(("iabs", port), make), "int"
        if expr.op == "sqrt":
            return self._memo(("FSQRT", port), lambda: b.op("FSQRT", port)), "float"
        raise CompileError(f"unknown unary {expr.op!r}")

    def _address(self, array_name: str, index) -> tuple[Port, str]:
        """Port holding the byte address of ``array[index]``."""
        arr = self.kernel.array(array_name)
        base = self.array_base[array_name]
        b = self.builder
        if isinstance(index, Const):
            addr = base + int(index.value) * arr.elem_size
            return self._memo(("const", addr, "int"), lambda: b.movi(addr)), arr.elem
        port, vtype = self._eval(index)
        if vtype != "int":
            raise CompileError(f"array index for {array_name} must be int")
        scaled = self._memo(("SHLI", port, 3), lambda: b.op("SHLI", port, imm=3))
        return self._memo(("ADDI", scaled, base),
                          lambda: b.op("ADDI", scaled, imm=base)), arr.elem

    def _eval_load(self, expr: Load) -> tuple[Port, str]:
        addr, elem = self._address(expr.array, expr.index)
        op = "LDF" if elem == "float" else "LDD"
        return self.builder.load(addr, op=op), elem

    # ------------------------------------------------------------------
    # Statement lowering
    # ------------------------------------------------------------------

    def compile(self) -> None:
        self._open(self.info.entry_label)
        self._emit_stmts(self.fn.body)
        if self.builder is not None and not self.returned:
            self._emit_return(Return())

    def _emit_stmts(self, stmts) -> None:
        for stmt in stmts:
            if self.returned:
                raise CompileError(f"{self.fn.name}: statements after return")
            self._emit(stmt)

    def _emit(self, stmt) -> None:
        if isinstance(stmt, Assign):
            self._ensure_capacity(self._est_expr(stmt.expr) + 4, self._est_mem(stmt.expr))
            self._emit_assign(stmt)
        elif isinstance(stmt, Store):
            cost = self._est_expr(stmt.index) + self._est_expr(stmt.value) + 6
            self._ensure_capacity(cost, self._est_mem(stmt.index)
                                  + self._est_mem(stmt.value) + 1)
            self._emit_store(stmt)
        elif isinstance(stmt, If):
            cost = self._est_if(stmt)
            mem = self._est_if_mem(stmt)
            if cost > INST_SOFT_LIMIT or mem > LSQ_SOFT_LIMIT:
                raise CompileError(
                    f"{self.fn.name}: if-converted region too large "
                    f"({cost} insts / {mem} memory ops); restructure the kernel")
            self._ensure_capacity(cost, mem)
            self._emit_if(stmt)
        elif isinstance(stmt, For):
            self._emit_for(stmt)
        elif isinstance(stmt, Call):
            self._emit_call(stmt)
        elif isinstance(stmt, Return):
            self._emit_return(stmt)
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def _emit_assign(self, stmt: Assign) -> None:
        port, vtype = self._eval(stmt.expr)
        if self.path is not None:
            if stmt.var not in self.types:
                raise CompileError(
                    f"{self.fn.name}: {stmt.var!r} conditionally assigned "
                    "before initialization")
            old = self._get(stmt.var)
            port = self.builder.phi(self.path, port, old)
        self._set(stmt.var, port, vtype)

    def _emit_store(self, stmt: Store) -> None:
        addr, elem = self._address(stmt.array, stmt.index)
        value, vtype = self._eval(stmt.value)
        if vtype != elem:
            raise CompileError(
                f"{self.fn.name}: storing {vtype} into {elem} array {stmt.array}")
        op = "STF" if elem == "float" else "STD"
        if self.path is None:
            self.builder.store(addr, value, op=op)
        else:
            handle = self.builder.store(addr, value, op=op, pred=(self.path, True))
            self.builder.null_store(handle, pred=(self.path, False))

    def _emit_if(self, stmt: If) -> None:
        cond, ctype = self._eval(stmt.cond)
        if ctype != "int":
            raise CompileError(f"{self.fn.name}: if condition must be int (0/1)")
        outer = self.path
        b = self.builder
        not_cond = self._memo(("notb", cond), lambda: b.op("XORI", cond, imm=1))
        if outer is None:
            then_path, else_path = cond, not_cond
        else:
            then_path = self._memo(("and", outer, cond),
                                   lambda: b.op("AND", outer, cond))
            else_path = self._memo(("and", outer, not_cond),
                                   lambda: b.op("AND", outer, not_cond))
        self.path = then_path
        self._emit_stmts(stmt.then)
        if stmt.else_:
            self.path = else_path
            self._emit_stmts(stmt.else_)
        self.path = outer

    def _emit_for(self, stmt: For) -> None:
        if self.path is not None:
            raise CompileError(f"{self.fn.name}: loops inside conditionals "
                               "are not supported; restructure the kernel")
        if stmt.step <= 0:
            raise CompileError(f"{self.fn.name}: loop step must be positive")

        # Loop variable initialization in the preheader.
        start_port, stype = self._eval(stmt.start)
        if stype != "int":
            raise CompileError(f"{self.fn.name}: loop bounds must be int")
        self._set(stmt.var, start_port, "int")

        unroll = self._unroll_factor(stmt)

        head = self._label()
        exit_label = self._label()
        # Preheader guard: skip the loop body when the trip count is zero.
        end_port, etype = self._eval(stmt.end)
        if etype != "int":
            raise CompileError(f"{self.fn.name}: loop bounds must be int")
        guard = self.builder.op("TLT", self._get(stmt.var), end_port)
        self._close_cond(guard, head, exit_label)

        # Loop body block(s).
        self._open(head)
        for copy in range(unroll):
            self._emit_stmts(stmt.body)
            bumped = self.builder.op("ADDI", self._get(stmt.var), imm=stmt.step)
            self._set(stmt.var, bumped, "int")
        # Latch: continue while var < end.
        end_port, __ = self._eval(stmt.end)
        again = self.builder.op("TLT", self._get(stmt.var), end_port)
        self._close_cond(again, head, exit_label)
        self._open(exit_label)

    def _unroll_factor(self, stmt: For) -> int:
        unroll = max(1, stmt.unroll)
        trip = None
        if isinstance(stmt.start, Const) and isinstance(stmt.end, Const):
            trip = max(0, (int(stmt.end.value) - int(stmt.start.value)
                           + stmt.step - 1) // stmt.step)
        while unroll > 1:
            if trip is None or trip % unroll != 0:
                unroll //= 2
                continue
            # The statement estimator overshoots real block sizes (CSE
            # and register reads make bodies cheaper than the walk
            # suggests), so the gate compensates; overshooting is safe —
            # per-statement capacity checks split oversized bodies.
            body_cost = (sum(self._est_stmt(s) for s in stmt.body) * 2) // 3 + 3
            body_mem = sum(self._est_stmt_mem(s) for s in stmt.body)
            if (body_cost * unroll + 8 > INST_SOFT_LIMIT
                    or body_mem * unroll > LSQ_SOFT_LIMIT):
                unroll //= 2
                continue
            break
        return max(1, unroll)

    def _emit_call(self, stmt: Call) -> None:
        if self.path is not None:
            raise CompileError(f"{self.fn.name}: calls inside conditionals "
                               "are not supported")
        if stmt.func not in self.infos:
            raise CompileError(f"{self.fn.name}: call to unknown {stmt.func!r}")
        callee = self.infos[stmt.func]
        callee_fn = self.kernel.function(stmt.func)
        if len(stmt.args) != len(callee_fn.params):
            raise CompileError(
                f"{self.fn.name}: {stmt.func} takes {len(callee_fn.params)} args")

        # Pass arguments through the callee's parameter registers.
        for param, arg in zip(callee_fn.params, stmt.args):
            port, __ = self._eval(arg)
            self.builder.write(callee.param_regs[param], port)
        continuation = self._label()
        self.builder.write(callee.link_reg, self.builder.label_address(continuation))
        self._flush_dirty()
        self.builder.branch("CALLO", target=callee.entry_label, exit_id=0)
        self.program.add_block(self.builder.build())

        # The continuation must directly follow the call block in layout:
        # the RAS pushes the sequential next-block address.
        self._open(continuation)
        if stmt.dest is not None:
            ret_port = self.builder.read(callee.ret_reg)
            self._set(stmt.dest, ret_port, callee_fn.returns)

    def _emit_return(self, stmt: Return) -> None:
        if self.path is not None:
            raise CompileError(f"{self.fn.name}: return inside conditionals "
                               "is not supported")
        if stmt.expr is not None:
            port, vtype = self._eval(stmt.expr)
            if vtype != self.fn.returns:
                raise CompileError(
                    f"{self.fn.name}: returns {vtype}, declared {self.fn.returns}")
            self.builder.write(self.info.ret_reg, port)
        self._flush_dirty()
        if self.fn.name == "main":
            self.builder.branch("HALT", exit_id=0)
        else:
            link = self.builder.read(self.info.link_reg)
            self.builder.branch("RET", exit_id=0, addr=link)
        self.program.add_block(self.builder.build())
        self.builder = None
        self.returned = True

    # ------------------------------------------------------------------
    # Cost estimation (over-approximations used for block splitting)
    # ------------------------------------------------------------------

    def _est_expr(self, expr) -> int:
        if isinstance(expr, Const):
            return 1            # MOVI, usually shared via CSE
        if isinstance(expr, Var):
            return 0            # register reads occupy no window slot
        if isinstance(expr, Load):
            return self._est_expr(expr.index) + 3   # shift, add, load
        if isinstance(expr, (Bin, Cmp)):
            return self._est_expr(expr.a) + self._est_expr(expr.b) + 1
        if isinstance(expr, Un):
            return self._est_expr(expr.a) + 3
        if isinstance(expr, (ItoF, FtoI)):
            return self._est_expr(expr.a) + 1
        return 2

    def _est_mem(self, expr) -> int:
        if isinstance(expr, Load):
            return self._est_mem(expr.index) + 1
        if isinstance(expr, (Bin, Cmp)):
            return self._est_mem(expr.a) + self._est_mem(expr.b)
        if isinstance(expr, (Un, ItoF, FtoI)):
            return self._est_mem(expr.a)
        return 0

    def _est_stmt(self, stmt) -> int:
        if isinstance(stmt, Assign):
            return self._est_expr(stmt.expr) + 2    # +phi pair when predicated
        if isinstance(stmt, Store):
            return self._est_expr(stmt.index) + self._est_expr(stmt.value) + 3
        if isinstance(stmt, If):
            return self._est_if(stmt)
        return 10

    def _est_stmt_mem(self, stmt) -> int:
        if isinstance(stmt, Assign):
            return self._est_mem(stmt.expr)
        if isinstance(stmt, Store):
            return self._est_mem(stmt.index) + self._est_mem(stmt.value) + 1
        if isinstance(stmt, If):
            return self._est_if_mem(stmt)
        return 0

    def _est_if(self, stmt: If) -> int:
        return (self._est_expr(stmt.cond) + 3
                + sum(self._est_stmt(s) for s in stmt.then)
                + sum(self._est_stmt(s) for s in stmt.else_))

    def _est_if_mem(self, stmt: If) -> int:
        return (self._est_mem(stmt.cond)
                + sum(self._est_stmt_mem(s) for s in stmt.then)
                + sum(self._est_stmt_mem(s) for s in stmt.else_))
