"""A miniature compiler standing in for the TRIPS toolchain.

Workloads are written once, in a small typed kernel DSL (scalars,
arrays, loops, conditionals, calls), and lowered by two backends:

* :mod:`repro.compiler.edge_backend` — forms predicated EDGE hyperblocks
  (if-conversion via flat predicates, loop unrolling, NULL insertion for
  conditional outputs, block splitting under the 128-instruction /
  32-read / 32-write / 32-LSQ limits) for the TFlex/TRIPS simulator;
* :mod:`repro.compiler.risc_backend` — emits conventional linear RISC
  code for the out-of-order superscalar baseline (figure 5).
"""

from repro.compiler.ast_nodes import (
    Array,
    Assign,
    Bin,
    Call,
    Cmp,
    Const,
    For,
    Function,
    If,
    ItoF,
    FtoI,
    KernelProgram,
    Load,
    Return,
    Store,
    Un,
    Var,
    CompileError,
)
from repro.compiler.edge_backend import compile_edge
from repro.compiler.risc_backend import compile_risc
from repro.compiler.schedule import place_block, place_program, cross_core_edges

__all__ = [
    "Array",
    "Assign",
    "Bin",
    "Call",
    "Cmp",
    "Const",
    "For",
    "Function",
    "If",
    "ItoF",
    "FtoI",
    "KernelProgram",
    "Load",
    "Return",
    "Store",
    "Un",
    "Var",
    "CompileError",
    "compile_edge",
    "compile_risc",
    "place_block",
    "place_program",
    "cross_core_edges",
]
