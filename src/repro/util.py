"""Small shared utilities with no intra-package dependencies."""

from __future__ import annotations

INT_MIN = -(1 << 63)
INT_MAX = (1 << 63) - 1
_WRAP = 1 << 64


def wrap64(value: int) -> int:
    """Wrap an integer to signed 64-bit two's complement range."""
    return (value + (1 << 63)) % _WRAP - (1 << 63)
