"""``repro.exec`` — parallel experiment engine with a persistent store.

Every point of the paper's evaluation (figures 5-10) is one simulation
of (benchmark x composition x config).  This package factors that point
into three composable pieces:

* :mod:`repro.exec.spec` — :class:`JobSpec`, a pure, hashable
  description of one simulation point, plus :func:`spec_hash`, its
  stable content address.
* :mod:`repro.exec.store` — :class:`ResultStore`, a content-addressed
  on-disk cache of JSON result records with atomic writes and
  corruption-tolerant reads.
* :mod:`repro.exec.pool` — :class:`WorkerPool`, persistent warm worker
  processes served over a request/reply pipe, with a terminate→kill
  watchdog and transparent respawn.
* :mod:`repro.exec.sched` — :class:`DurationBook` duration estimates
  and the longest-job-first dispatch order they feed.
* :mod:`repro.exec.executor` — :class:`ParallelExecutor`, the fan-out
  driver (warm pool by default, one-process-per-job fallback) with
  per-job timeout, duplicate-spec coalescing, one retry on worker
  crash, and a live progress/ETA reporter.

The harness (:mod:`repro.harness.runner`) layers its in-process cache
on top of the store, so warm-cache replays of any figure driver are
instant and ``--jobs N`` parallelises cold sweeps.  See
``docs/EXECUTION.md``.
"""

from repro.exec.spec import SCHEMA_VERSION, JobSpec, spec_hash
from repro.exec.store import (BlobStore, ResultStore, advisory_lock,
                              gc_cache, parse_size)
from repro.exec.progress import ProgressReporter
from repro.exec.sched import DurationBook, job_family, order_indices
from repro.exec.worker import execute_spec, pool_worker_main
from repro.exec.pool import PoolEvent, WorkerPool
from repro.exec.executor import JobResult, ParallelExecutor, run_specs

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "spec_hash",
    "BlobStore",
    "ResultStore",
    "advisory_lock",
    "gc_cache",
    "parse_size",
    "ProgressReporter",
    "DurationBook",
    "job_family",
    "order_indices",
    "execute_spec",
    "pool_worker_main",
    "PoolEvent",
    "WorkerPool",
    "JobResult",
    "ParallelExecutor",
    "run_specs",
]
