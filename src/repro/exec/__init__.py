"""``repro.exec`` — parallel experiment engine with a persistent store.

Every point of the paper's evaluation (figures 5-10) is one simulation
of (benchmark x composition x config).  This package factors that point
into three composable pieces:

* :mod:`repro.exec.spec` — :class:`JobSpec`, a pure, hashable
  description of one simulation point, plus :func:`spec_hash`, its
  stable content address.
* :mod:`repro.exec.store` — :class:`ResultStore`, a content-addressed
  on-disk cache of JSON result records with atomic writes and
  corruption-tolerant reads.
* :mod:`repro.exec.executor` — :class:`ParallelExecutor`, a
  multiprocessing fan-out with per-job timeout, one retry on worker
  crash, and a live progress/ETA reporter.

The harness (:mod:`repro.harness.runner`) layers its in-process cache
on top of the store, so warm-cache replays of any figure driver are
instant and ``--jobs N`` parallelises cold sweeps.  See
``docs/EXECUTION.md``.
"""

from repro.exec.spec import SCHEMA_VERSION, JobSpec, spec_hash
from repro.exec.store import ResultStore
from repro.exec.progress import ProgressReporter
from repro.exec.worker import execute_spec
from repro.exec.executor import JobResult, ParallelExecutor, run_specs

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "spec_hash",
    "ResultStore",
    "ProgressReporter",
    "execute_spec",
    "JobResult",
    "ParallelExecutor",
    "run_specs",
]
