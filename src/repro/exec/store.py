"""Content-addressed on-disk result store.

Records are JSON files under ``<root>/<hash[:2]>/<hash>.json`` where
``hash`` is :func:`repro.exec.spec.spec_hash` of the job spec salted
with the store's schema version.  Writes are atomic (temp file in the
same directory, then ``os.replace``) so a crash mid-write can never
leave a record that parses; reads are corruption-tolerant — a
truncated, unparsable, or wrong-schema file is a cache *miss*, never
an error.
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import pathlib
import tempfile
import time
from typing import Iterator, Optional, Union

from repro.exec.spec import SCHEMA_VERSION, JobSpec, spec_hash

try:                                    # POSIX advisory locking
    import fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    fcntl = None


@contextlib.contextmanager
def advisory_lock(path: Union[str, pathlib.Path]):
    """Exclusive advisory file lock (``flock``) on ``path``.

    Serialises read-modify-write sections across *processes* — the
    store's record writes are individually atomic already, but shared
    sidecars (the scheduler's duration book) and concurrent CLI
    invocations pointed at one cache directory need a mutual-exclusion
    primitive.  Advisory only: readers that never take the lock are
    unaffected.  On platforms without ``fcntl`` the lock degrades to a
    no-op (single-writer behaviour is then the caller's problem, which
    matches the pre-lock state of the world).
    """
    if fcntl is None:                   # pragma: no cover - non-POSIX
        yield
        return
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+", encoding="utf-8") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class ResultStore:
    """Durable result cache, keyed by content address of the job spec."""

    def __init__(self, root: Union[str, pathlib.Path],
                 salt: int = SCHEMA_VERSION) -> None:
        self.root = pathlib.Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keying --------------------------------------------------------

    def key(self, spec: JobSpec) -> str:
        return spec_hash(spec, salt=self.salt)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def lock(self):
        """Advisory cross-process lock scoped to this store's root.

        Record writes are atomic on their own; take this around
        multi-step read-modify-write sequences (compaction, sidecar
        maintenance) when several CLI invocations share the cache."""
        return advisory_lock(self.root / ".lock")

    # -- reads ---------------------------------------------------------

    def load(self, spec: JobSpec) -> Optional[dict]:
        """The stored payload for ``spec``, or ``None`` on any miss —
        including a corrupt or schema-mismatched record."""
        key = self.key(spec)
        record = self._read_record(self.path_for(key))
        if (record is None or record.get("schema") != self.salt
                or record.get("key") != key or "payload" not in record):
            self.misses += 1
            return None
        self.hits += 1
        return record["payload"]

    def contains(self, spec: JobSpec) -> bool:
        """Like :meth:`load` but without touching the hit/miss counters.

        Applies the *same* validation as :meth:`load` (schema, key
        echo, payload presence) — a corrupt record that would miss on
        load must not report "cached" here.
        """
        key = self.key(spec)
        record = self._read_record(self.path_for(key))
        return (record is not None and record.get("schema") == self.salt
                and record.get("key") == key and "payload" in record)

    @staticmethod
    def _read_record(path: pathlib.Path) -> Optional[dict]:
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    # -- writes --------------------------------------------------------

    def store(self, spec: JobSpec, payload: dict) -> pathlib.Path:
        """Atomically persist one result record."""
        key = self.key(spec)
        record = {
            "schema": self.salt,
            "key": key,
            "spec": spec.to_dict(),
            "payload": payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance ---------------------------------------------------

    def iter_keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for key in list(self.iter_keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}


class BlobStore:
    """Content-keyed gzip-JSON blob store with the same durability
    contract as :class:`ResultStore`.

    Records live under ``<root>/<key[:2]>/<key>.json.gz`` where the
    caller supplies the key (already a content hash).  Writes are
    atomic (temp file + ``os.replace``); reads are corruption-tolerant
    — a truncated, unparsable, schema- or key-mismatched blob is a
    miss, never an error.  The sampled engine's fast-forward trace
    store (:class:`repro.sample.trace.FFTraceStore`) is the client.
    """

    SUFFIX = ".json.gz"

    def __init__(self, root: Union[str, pathlib.Path], salt: int = 0) -> None:
        self.root = pathlib.Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def lock(self):
        """Advisory cross-process lock scoped to this store's root."""
        return advisory_lock(self.root / ".lock")

    # -- reads ---------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or ``None`` on any miss —
        including a corrupt, truncated, or schema-mismatched blob."""
        try:
            with gzip.open(self.path_for(key), "rt", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, EOFError, ValueError, UnicodeDecodeError):
            record = None
        if (not isinstance(record, dict) or record.get("schema") != self.salt
                or record.get("key") != key or "payload" not in record):
            self.misses += 1
            return None
        self.hits += 1
        return record["payload"]

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no validation beyond the file being
        present; :meth:`load` still applies the full checks)."""
        return self.path_for(key).is_file()

    # -- writes --------------------------------------------------------

    def store(self, key: str, payload: dict) -> pathlib.Path:
        """Atomically persist one blob; last writer wins on a race
        (both writers hold identical content for a content key)."""
        record = {"schema": self.salt, "key": key, "payload": payload}
        # Compact separators + compression level 1: blobs are cold
        # storage for already-hashed content, so write latency (on the
        # recording run's critical path) beats ratio; ``mtime=0`` keeps
        # the bytes deterministic for identical content.
        data = json.dumps(record, separators=(",", ":")).encode("utf-8")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.GzipFile(fileobj=raw, mode="wb",
                                   compresslevel=1, mtime=0) as fh:
                    fh.write(data)
                raw.flush()
                os.fsync(raw.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance ---------------------------------------------------

    def iter_keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"??/*{self.SUFFIX}")):
            yield path.name[:-len(self.SUFFIX)]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        removed = 0
        for key in list(self.iter_keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}


# ----------------------------------------------------------------------
# Cache garbage collection (results + traces; sidecars exempt)
# ----------------------------------------------------------------------

#: Prunable record classes under one cache root: result records at the
#: top level, fast-forward traces under ``traces/``.  The scheduler's
#: ``durations.json`` sidecar and lock files are deliberately not
#: listed — they are tiny, shared, and rebuilt incrementally.
_GC_CLASSES = (
    ("result", "??/*.json"),
    ("trace", "traces/??/*.json.gz"),
)


def parse_size(text: Union[str, int, None]) -> Optional[int]:
    """Parse a byte budget like ``500M``/``2G``/``123456`` (K/M/G are
    binary multiples); ``None`` passes through."""
    if text is None or isinstance(text, int):
        return text
    raw = text.strip()
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    factor = units.get(raw[-1:].upper(), 1)
    digits = raw[:-1] if factor != 1 else raw
    try:
        value = int(digits)
    except ValueError:
        raise ValueError(f"unparsable size {text!r} (expected e.g. "
                         f"500M, 2G, or a byte count)") from None
    if value < 0:
        raise ValueError(f"size must be >= 0, got {text!r}")
    return value * factor


def gc_cache(root: Union[str, pathlib.Path],
             max_bytes: Optional[int] = None,
             max_age_days: Optional[float] = None,
             dry_run: bool = False,
             now: Optional[float] = None) -> dict:
    """Size/age-bounded pruning of one cache directory.

    Two independent bounds, both optional: records older than
    ``max_age_days`` go first, then the newest records are kept until
    ``max_bytes`` is exhausted and the remainder (oldest-first) is
    removed.  With neither bound this only reports the footprint.
    ``dry_run`` computes the same plan without deleting anything.

    Runs under the store's advisory lock so concurrent CLI invocations
    can't race the scan; individual deletions tolerate records that
    vanish mid-flight (another gc, or a writer replacing a temp file).
    Emits a ``cache.gc`` event plus ``exec.gc_scanned`` /
    ``exec.gc_removed`` / ``exec.gc_bytes_freed`` metrics.
    """
    import repro.obs as obs_lib

    root = pathlib.Path(root)
    report = {
        "root": str(root), "dry_run": dry_run,
        "scanned": 0, "scanned_bytes": 0,
        "removed": 0, "removed_bytes": 0,
        "kept": 0, "kept_bytes": 0,
        "removed_paths": [],
    }
    if not root.is_dir():
        return report
    now = time.time() if now is None else now

    with advisory_lock(root / ".lock"):
        entries = []                      # (mtime, size, path, class)
        for kind, pattern in _GC_CLASSES:
            for path in root.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path, kind))
        report["scanned"] = len(entries)
        report["scanned_bytes"] = sum(size for __, size, __p, __k in entries)

        doomed = []
        survivors = sorted(entries, reverse=True)   # newest first
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            doomed = [e for e in survivors if e[0] < cutoff]
            survivors = [e for e in survivors if e[0] >= cutoff]
        if max_bytes is not None:
            budget = max_bytes
            kept = []
            for entry in survivors:
                if entry[1] <= budget:
                    budget -= entry[1]
                    kept.append(entry)
                else:
                    doomed.append(entry)
            survivors = kept

        for __mtime, size, path, kind in doomed:
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            report["removed"] += 1
            report["removed_bytes"] += size
            report["removed_paths"].append(str(path))
        report["kept"] = len(survivors)
        report["kept_bytes"] = sum(size for __, size, __p, __k in survivors)

    obs = obs_lib.current()
    if obs.active:
        obs.emit("cache.gc", root=str(root), dry_run=dry_run,
                 scanned=report["scanned"], removed=report["removed"],
                 bytes_freed=report["removed_bytes"],
                 bytes_kept=report["kept_bytes"])
        obs.metrics.inc("exec.gc_scanned", report["scanned"])
        if report["removed"]:
            obs.metrics.inc("exec.gc_removed", report["removed"],
                            dry_run=str(dry_run).lower())
            obs.metrics.inc("exec.gc_bytes_freed", report["removed_bytes"],
                            dry_run=str(dry_run).lower())
    return report
