"""Content-addressed on-disk result store.

Records are JSON files under ``<root>/<hash[:2]>/<hash>.json`` where
``hash`` is :func:`repro.exec.spec.spec_hash` of the job spec salted
with the store's schema version.  Writes are atomic (temp file in the
same directory, then ``os.replace``) so a crash mid-write can never
leave a record that parses; reads are corruption-tolerant — a
truncated, unparsable, or wrong-schema file is a cache *miss*, never
an error.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from typing import Iterator, Optional, Union

from repro.exec.spec import SCHEMA_VERSION, JobSpec, spec_hash

try:                                    # POSIX advisory locking
    import fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    fcntl = None


@contextlib.contextmanager
def advisory_lock(path: Union[str, pathlib.Path]):
    """Exclusive advisory file lock (``flock``) on ``path``.

    Serialises read-modify-write sections across *processes* — the
    store's record writes are individually atomic already, but shared
    sidecars (the scheduler's duration book) and concurrent CLI
    invocations pointed at one cache directory need a mutual-exclusion
    primitive.  Advisory only: readers that never take the lock are
    unaffected.  On platforms without ``fcntl`` the lock degrades to a
    no-op (single-writer behaviour is then the caller's problem, which
    matches the pre-lock state of the world).
    """
    if fcntl is None:                   # pragma: no cover - non-POSIX
        yield
        return
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+", encoding="utf-8") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class ResultStore:
    """Durable result cache, keyed by content address of the job spec."""

    def __init__(self, root: Union[str, pathlib.Path],
                 salt: int = SCHEMA_VERSION) -> None:
        self.root = pathlib.Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keying --------------------------------------------------------

    def key(self, spec: JobSpec) -> str:
        return spec_hash(spec, salt=self.salt)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def lock(self):
        """Advisory cross-process lock scoped to this store's root.

        Record writes are atomic on their own; take this around
        multi-step read-modify-write sequences (compaction, sidecar
        maintenance) when several CLI invocations share the cache."""
        return advisory_lock(self.root / ".lock")

    # -- reads ---------------------------------------------------------

    def load(self, spec: JobSpec) -> Optional[dict]:
        """The stored payload for ``spec``, or ``None`` on any miss —
        including a corrupt or schema-mismatched record."""
        key = self.key(spec)
        record = self._read_record(self.path_for(key))
        if (record is None or record.get("schema") != self.salt
                or record.get("key") != key or "payload" not in record):
            self.misses += 1
            return None
        self.hits += 1
        return record["payload"]

    def contains(self, spec: JobSpec) -> bool:
        """Like :meth:`load` but without touching the hit/miss counters.

        Applies the *same* validation as :meth:`load` (schema, key
        echo, payload presence) — a corrupt record that would miss on
        load must not report "cached" here.
        """
        key = self.key(spec)
        record = self._read_record(self.path_for(key))
        return (record is not None and record.get("schema") == self.salt
                and record.get("key") == key and "payload" in record)

    @staticmethod
    def _read_record(path: pathlib.Path) -> Optional[dict]:
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    # -- writes --------------------------------------------------------

    def store(self, spec: JobSpec, payload: dict) -> pathlib.Path:
        """Atomically persist one result record."""
        key = self.key(spec)
        record = {
            "schema": self.salt,
            "key": key,
            "spec": spec.to_dict(),
            "payload": payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance ---------------------------------------------------

    def iter_keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for key in list(self.iter_keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}
