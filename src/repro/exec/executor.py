"""Parallel job execution over worker processes.

The executor fans :class:`~repro.exec.spec.JobSpec` jobs out over at
most ``jobs`` concurrent workers, with:

* a consultation of the :class:`~repro.exec.store.ResultStore` first,
  so warm jobs never touch a worker;
* coalescing of equal-hash specs within the batch — one runs, every
  duplicate receives the same payload;
* a per-job wall-clock timeout enforced by a terminate→kill watchdog;
* one retry (configurable) when a worker raises, crashes, or times
  out — a bad job is *reported* failed, it never kills the sweep;
* optional live progress/ETA reporting.

Two execution backends share those semantics:

* the **warm pool** (default, :mod:`repro.exec.pool`): ``jobs``
  long-lived workers that import the simulator once and serve specs
  over a request/reply pipe, with longest-job-first dispatch from
  learned duration estimates (:mod:`repro.exec.sched`);
* the **per-job-spawn** path (``pool=False``): one process per job,
  capped — the shape of vusec's ``prun`` scheduler, kept as the
  fallback and as the baseline the pool is benchmarked against.

Results come back in input order as :class:`JobResult` records; the
parent (not the workers) persists successful payloads to the store, so
there is a single writer per store.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import repro.obs as obs_lib
from repro.exec.pool import WorkerPool
from repro.exec.progress import ProgressReporter
from repro.exec.sched import DurationBook, order_indices
from repro.exec.spec import JobSpec, spec_hash
from repro.exec.store import ResultStore
from repro.exec.worker import execute_spec

#: Job states a sweep can end in.
STATUS_OK = "ok"             # simulated this run
STATUS_CACHED = "cached"     # satisfied from the result store
STATUS_FAILED = "failed"     # exhausted retries (raise/crash/timeout)

#: The serial (jobs=1) path runs jobs in-process, so there is no worker
#: to terminate and ``timeout=`` cannot be enforced.  Warned once per
#: process (plus an ``exec.timeout_unsupported`` metric every run) so
#: sweeps never *silently* appear bounded.
_SERIAL_TIMEOUT_WARNED = False


def _failure_reason(error: str) -> str:
    """Classify a worker error string for metric labels: ``timeout``
    (wall clock exceeded), ``crash`` (the process died or its pipe
    broke), or ``exception`` (the job raised)."""
    if error.startswith("worker timed out"):
        return "timeout"
    if error.startswith("worker crashed") or error == "worker pipe broken":
        return "crash"
    return "exception"


@dataclass
class JobResult:
    """Outcome of one job in a sweep."""

    spec: JobSpec
    status: str
    payload: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)


def _child_main(worker: Callable[[JobSpec], dict], spec: JobSpec,
                conn) -> None:
    """Run ``worker(spec)`` in a child process, report through the pipe."""
    try:
        conn.send(("ok", worker(spec)))
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Active:
    index: int
    process: multiprocessing.Process
    conn: object
    started: float
    outcome: Optional[tuple] = None     # ("ok", payload) | ("error", msg)


class ParallelExecutor:
    """Runs a batch of job specs, in parallel when ``jobs > 1``."""

    poll_interval = 0.01    # seconds between scheduler sweeps
    #: Grace period for the terminate→kill escalation on unresponsive
    #: workers (both backends) — a worker that ignores SIGTERM is
    #: SIGKILLed after this many seconds instead of wedging the sweep.
    grace = 5.0

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 1, store: Optional[ResultStore] = None,
                 worker: Callable[[JobSpec], dict] = execute_spec,
                 progress: bool = False,
                 mp_context: Optional[str] = None,
                 obs: Optional[obs_lib.Observability] = None,
                 pool: bool = True, schedule: str = "ljf") -> None:
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.store = store
        self.worker = worker
        self.progress = progress
        #: Warm worker pool (True, default) versus one-process-per-job.
        self.pool = pool
        #: Dispatch policy for the pool backend: ``"ljf"`` or ``"fifo"``.
        self.schedule = schedule
        #: Observability: per-job lifecycle events (``job.*``) plus
        #: ``exec.jobs`` counters and an ``exec.job_seconds`` histogram.
        self.obs = obs if obs is not None else obs_lib.current()
        self._ctx = multiprocessing.get_context(mp_context)

    # -- public API ----------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        """Execute every spec; results are returned in input order."""
        specs = list(specs)
        results: list[Optional[JobResult]] = [None] * len(specs)
        todo: list[int] = []
        primary: dict[str, int] = {}        # spec hash -> first cold index
        coalesced: dict[int, int] = {}      # duplicate index -> primary
        for i, spec in enumerate(specs):
            payload = self.store.load(spec) if self.store is not None else None
            if payload is not None:
                results[i] = JobResult(spec=spec, status=STATUS_CACHED,
                                       payload=payload)
                if self.obs.active:
                    self.obs.emit("job.cached", bench=spec.bench,
                                  label=spec.label())
                    self.obs.metrics.inc("exec.jobs", status=STATUS_CACHED)
                continue
            key = spec_hash(spec)
            first = primary.get(key)
            if first is not None:
                # Equal-hash duplicate within the batch: run it once,
                # hand the duplicate the primary's payload afterwards.
                coalesced[i] = first
                if self.obs.active:
                    self.obs.emit("job.coalesced", bench=spec.bench,
                                  label=spec.label(), primary=first)
                    self.obs.metrics.inc("exec.coalesced")
                continue
            primary[key] = i
            todo.append(i)

        if self.jobs <= 1 and self.timeout is not None and todo:
            self._warn_serial_timeout()

        reporter = (ProgressReporter(total=len(specs))
                    if self.progress and specs else None)
        if reporter is not None:
            for r in results:
                if r is not None:
                    reporter.update(label=r.spec.bench, cached=True)
        try:
            if self.jobs <= 1:
                self._run_serial(specs, todo, results, reporter)
            elif self.pool:
                self._run_pooled(specs, todo, results, reporter)
            else:
                self._run_parallel(specs, todo, results, reporter)
            for i, first in coalesced.items():
                outcome = results[first]
                results[i] = JobResult(
                    spec=specs[i], status=outcome.status,
                    payload=outcome.payload, error=outcome.error)
                if reporter is not None:
                    reporter.update(label=specs[i].bench,
                                    ok=outcome.ok, cached=True)
        finally:
            if reporter is not None:
                reporter.finish()
        return [r for r in results if r is not None]

    def _warn_serial_timeout(self) -> None:
        global _SERIAL_TIMEOUT_WARNED
        if self.obs.active:
            self.obs.metrics.inc("exec.timeout_unsupported")
        if not _SERIAL_TIMEOUT_WARNED:
            _SERIAL_TIMEOUT_WARNED = True
            warnings.warn(
                f"timeout={self.timeout:g} is not enforced on the serial "
                f"(jobs=1) path: jobs run in-process and cannot be "
                f"terminated — use jobs>=2 for a bounded sweep",
                RuntimeWarning, stacklevel=3)

    # -- serial path ---------------------------------------------------

    def _run_serial(self, specs, todo, results, reporter) -> None:
        # In-process execution: no per-job timeout (there is no process
        # to terminate), but the same retry-on-raise policy.
        for i in todo:
            spec = specs[i]
            started = time.monotonic()
            attempts = 0
            error = None
            payload = None
            while attempts <= self.retries:
                attempts += 1
                if self.obs.active:
                    self.obs.emit("job.start", bench=spec.bench,
                                  label=spec.label(), attempt=attempts)
                try:
                    payload = self.worker(spec)
                    error = None
                    break
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if attempts <= self.retries:
                        self._note_retry(spec, attempts, error, reporter)
            results[i] = self._finish(spec, payload, error, attempts,
                                      time.monotonic() - started, reporter)

    # -- warm-pool path ------------------------------------------------

    def _run_pooled(self, specs, todo, results, reporter) -> None:
        """Dispatch over a persistent :class:`WorkerPool`, longest jobs
        first when the duration book has history (FIFO when cold)."""
        book = DurationBook.for_store_root(
            self.store.root if self.store is not None else None)
        pending = deque(order_indices(specs, todo, book, self.schedule))
        attempts = {i: 0 for i in todo}
        started_total = {i: time.monotonic() for i in todo}
        pool = WorkerPool(size=min(self.jobs, max(1, len(todo))),
                          worker=self.worker, timeout=self.timeout,
                          grace=self.grace, mp_context=self._ctx,
                          obs=self.obs)
        try:
            while pending or pool.busy_count():
                while pending and pool.has_idle():
                    i = pending.popleft()
                    attempts[i] += 1
                    if self.obs.active:
                        self.obs.emit("job.start", bench=specs[i].bench,
                                      label=specs[i].label(),
                                      attempt=attempts[i])
                    pool.dispatch(i, specs[i])
                events = pool.poll()
                for event in events:
                    i = event.tag
                    if event.ok:
                        book.note_spec(specs[i], event.duration)
                        results[i] = self._finish(
                            specs[i], event.value, None, attempts[i],
                            time.monotonic() - started_total[i], reporter)
                        continue
                    error = event.value
                    reason = _failure_reason(error)
                    if self.obs.active:
                        if reason == "crash":
                            self.obs.metrics.inc("exec.crashes",
                                                 bench=specs[i].bench)
                        elif reason == "timeout":
                            self.obs.emit("job.timeout", index=i,
                                          timeout=self.timeout)
                            self.obs.metrics.inc("exec.timeouts")
                    if attempts[i] <= self.retries:
                        self._note_retry(specs[i], attempts[i], error,
                                         reporter)
                        pending.appendleft(i)    # retry before new work
                    else:
                        results[i] = self._finish(
                            specs[i], None, error, attempts[i],
                            time.monotonic() - started_total[i], reporter)
                if not events:
                    time.sleep(self.poll_interval)
        finally:
            pool.shutdown()
            book.flush()

    # -- per-job-spawn path --------------------------------------------

    def _run_parallel(self, specs, todo, results, reporter) -> None:
        pending = deque(todo)
        attempts = {i: 0 for i in todo}
        started_total = {i: time.monotonic() for i in todo}
        errors: dict[int, Optional[str]] = {i: None for i in todo}
        active: dict[int, _Active] = {}

        while pending or active:
            while pending and len(active) < self.jobs:
                i = pending.popleft()
                attempts[i] += 1
                active[i] = self._launch(i, specs[i], attempts[i])

            finished = [act for act in active.values() if self._settle(act)]
            for act in finished:
                del active[act.index]
                i = act.index
                kind, value = act.outcome
                if kind == "ok":
                    results[i] = self._finish(
                        specs[i], value, None, attempts[i],
                        time.monotonic() - started_total[i], reporter)
                else:
                    errors[i] = value
                    if (self.obs.active
                            and _failure_reason(value) == "crash"):
                        self.obs.metrics.inc("exec.crashes",
                                             bench=specs[i].bench)
                    if attempts[i] <= self.retries:
                        self._note_retry(specs[i], attempts[i], value,
                                         reporter)
                        pending.appendleft(i)    # retry before new work
                    else:
                        results[i] = self._finish(
                            specs[i], None, value, attempts[i],
                            time.monotonic() - started_total[i], reporter)
            if not finished:
                time.sleep(self.poll_interval)

    def _launch(self, index: int, spec: JobSpec, attempt: int = 1) -> _Active:
        if self.obs.active:
            self.obs.emit("job.start", bench=spec.bench, label=spec.label(),
                          attempt=attempt)
        recv, send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main, args=(self.worker, spec, send),
            daemon=True, name=f"repro-exec-{index}")
        process.start()
        send.close()    # child holds the write end now
        return _Active(index=index, process=process, conn=recv,
                       started=time.monotonic())

    def _settle(self, act: _Active) -> bool:
        """Decide whether one active job is done; fill ``act.outcome``."""
        try:
            has_message = act.conn.poll()
        except (OSError, ValueError):
            # The pipe itself is unusable: even if the worker process is
            # still alive it can never report a result, so waiting on it
            # would spin the scheduler forever (with no timeout set).
            # Treat it exactly like a crash.
            act.process.terminate()
            act.outcome = ("error", "worker pipe broken")
            self._reap(act)
            return True
        if has_message:
            try:
                act.outcome = act.conn.recv()
            except (EOFError, OSError):
                # The child closed the pipe without sending: it died
                # before reporting (or wedged after closing — terminate
                # is a no-op on an already-exited process, so the real
                # exit code survives).  Reap it to learn the exit code.
                act.process.terminate()
                act.process.join(self.grace)
                if act.process.is_alive():
                    act.process.kill()
                    act.process.join(self.grace)
                act.outcome = ("error", "worker crashed (exit code "
                                        f"{act.process.exitcode})")
            self._reap(act)
            return True
        if not act.process.is_alive():
            # The child can send its report and exit in the window
            # between the poll() above and this liveness check — drain
            # the pipe once more before calling it a crash.
            try:
                if act.conn.poll():
                    act.outcome = act.conn.recv()
            except (EOFError, OSError, ValueError):
                pass
            if act.outcome is None:
                act.outcome = ("error", "worker crashed (exit code "
                                        f"{act.process.exitcode})")
            self._reap(act)
            return True
        if (self.timeout is not None
                and time.monotonic() - act.started > self.timeout):
            act.process.terminate()
            act.outcome = ("error",
                           f"worker timed out after {self.timeout:g}s")
            if self.obs.active:
                self.obs.emit("job.timeout", index=act.index,
                              timeout=self.timeout)
                self.obs.metrics.inc("exec.timeouts")
            self._reap(act)
            return True
        return False

    def _reap(self, act: _Active) -> None:
        """Join a finished-or-terminated worker, escalating to SIGKILL.

        ``terminate()`` is only a *request*: a worker stuck in C code,
        swapping, or trapping SIGTERM can ignore it, and an unbounded
        ``join()`` would then stall the whole sweep forever.  Join with
        a grace period, ``kill()`` (uncatchable), then join again."""
        act.process.join(self.grace)
        if act.process.is_alive():
            act.process.kill()
            act.process.join(self.grace)
        try:
            act.conn.close()
        except OSError:
            pass

    # -- shared completion ---------------------------------------------

    def _note_retry(self, spec: JobSpec, attempt: int, error: str,
                    reporter: Optional[ProgressReporter]) -> None:
        """One failed attempt is about to be retried: emit the labelled
        retry metric and surface it in the progress line (shared by the
        serial and parallel paths)."""
        reason = _failure_reason(error)
        if self.obs.active:
            self.obs.emit("job.retry", bench=spec.bench, label=spec.label(),
                          attempt=attempt, error=error, reason=reason)
            self.obs.metrics.inc("exec.retries", reason=reason,
                                 bench=spec.bench)
        if reporter is not None:
            reporter.note_retry()

    def _finish(self, spec: JobSpec, payload: Optional[dict],
                error: Optional[str], attempts: int, duration: float,
                reporter: Optional[ProgressReporter]) -> JobResult:
        if error is None and payload is not None:
            if self.store is not None:
                self.store.store(spec, payload)
            result = JobResult(spec=spec, status=STATUS_OK, payload=payload,
                               attempts=attempts, duration=duration)
        else:
            result = JobResult(spec=spec, status=STATUS_FAILED, error=error,
                               attempts=attempts, duration=duration)
        if self.obs.active:
            self.obs.emit("job.done", bench=spec.bench, label=spec.label(),
                          status=result.status, attempts=attempts,
                          duration=round(duration, 6), error=error)
            self.obs.metrics.inc("exec.jobs", status=result.status)
            self.obs.metrics.observe("exec.job_seconds", duration)
        if reporter is not None:
            reporter.update(label=spec.bench, ok=result.ok)
        return result


def run_specs(specs: Sequence[JobSpec], jobs: int = 1,
              timeout: Optional[float] = None,
              store: Optional[ResultStore] = None,
              progress: bool = False, **kwargs) -> list[JobResult]:
    """Convenience wrapper: build an executor and run one batch."""
    executor = ParallelExecutor(jobs=jobs, timeout=timeout, store=store,
                                progress=progress, **kwargs)
    return executor.run(specs)
