"""Persistent warm worker pool: long-lived processes serving many jobs.

The per-job-spawn executor path pays a full process lifecycle — spawn,
interpreter boot, ``import repro`` (under spawn-type contexts), workload
build — for *every* job.  A sweep of hundreds of sub-second simulations
is then dominated by harness overhead, not modelling.  The pool keeps
``size`` worker processes alive for the whole batch instead:

* each worker imports the simulator stack **once**, and worker-side
  build caches (decoded workload programs — see
  :func:`repro.harness.runner.cached_program`) stay hot across jobs;
* jobs travel over a duplex request/reply pipe
  (:mod:`repro.exec.worker` documents the message protocol), so a job
  costs one pickled spec each way instead of a process;
* a watchdog escalates ``terminate()`` → grace → ``kill()`` on workers
  that exceed the per-job timeout or stop answering heartbeats, and
  **transparently respawns** them — a stuck or crashed worker costs one
  job (reported failed/retried by the executor), never the sweep.

Failure strings mirror the per-job-spawn path exactly ("worker timed
out after Ns", "worker crashed (exit code N)", "worker pipe broken"),
so the executor's retry/metric classification is identical on both
paths.

Observability: ``pool.spawn``/``pool.respawn``/``pool.kill`` events,
plus ``exec.pool_reuse`` (jobs served by an already-warm worker) and
``exec.worker_respawns`` counters.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Optional

import repro.obs as obs_lib
from repro.exec.spec import JobSpec
from repro.exec.worker import (
    MSG_JOB,
    MSG_PING,
    MSG_SHUTDOWN,
    REPLY_PONG,
    REPLY_READY,
    REPLY_RESULT,
    execute_spec,
    pool_worker_main,
)


@dataclass
class PoolEvent:
    """One finished job as observed by the pool."""

    tag: object                 # the caller's dispatch tag (job index)
    ok: bool
    value: object               # payload dict | error string
    duration: float             # seconds between dispatch and completion
    worker: str                 # worker name that served (or lost) it


class _PoolWorker:
    """Parent-side state for one worker slot (respawns in place)."""

    __slots__ = ("slot", "generation", "process", "conn", "tag", "spec",
                 "dispatched_at", "jobs_done", "last_seen",
                 "ping_token", "ping_sent_at")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.generation = 0
        self.process = None
        self.conn = None
        self.tag = None             # None = idle
        self.spec = None
        self.dispatched_at = 0.0
        self.jobs_done = 0
        self.last_seen = 0.0
        self.ping_token = 0
        self.ping_sent_at = None    # None = no ping outstanding

    @property
    def name(self) -> str:
        return f"repro-pool-{self.slot}.{self.generation}"

    @property
    def busy(self) -> bool:
        return self.tag is not None


class WorkerPool:
    """``size`` warm workers behind a dispatch/poll interface.

    The pool is deliberately passive: :meth:`dispatch` hands one job to
    an idle worker, :meth:`poll` performs one watchdog sweep and
    returns every job that finished (or was lost) since the last call.
    Scheduling policy, retries, and result persistence stay in the
    executor.
    """

    def __init__(self, size: int,
                 worker: Callable[[JobSpec], dict] = execute_spec,
                 timeout: Optional[float] = None,
                 grace: float = 5.0,
                 heartbeat_interval: float = 15.0,
                 heartbeat_grace: float = 10.0,
                 mp_context=None,
                 obs: Optional[obs_lib.Observability] = None) -> None:
        self.size = max(1, int(size))
        self.worker_fn = worker
        self.timeout = timeout
        self.grace = grace
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = heartbeat_grace
        if mp_context is None or isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._ctx = mp_context
        self.obs = obs if obs is not None else obs_lib.current()
        self.respawns = 0
        self.reused = 0             # jobs served by an already-warm worker
        self.workers = [_PoolWorker(slot) for slot in range(self.size)]
        for pw in self.workers:
            self._spawn(pw)

    # -- lifecycle -----------------------------------------------------

    def _spawn(self, pw: _PoolWorker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=pool_worker_main, args=(child_conn, self.worker_fn),
            daemon=True, name=pw.name)
        process.start()
        child_conn.close()          # the worker holds its end now
        pw.process = process
        pw.conn = parent_conn
        pw.tag = None
        pw.spec = None
        pw.jobs_done = 0
        pw.last_seen = time.monotonic()
        pw.ping_sent_at = None
        if self.obs.active:
            self.obs.emit("pool.spawn", worker=pw.name)

    def _respawn(self, pw: _PoolWorker, reason: str) -> None:
        self._close_conn(pw)
        pw.generation += 1
        self.respawns += 1
        if self.obs.active:
            self.obs.emit("pool.respawn", worker=pw.name, reason=reason)
            self.obs.metrics.inc("exec.worker_respawns", reason=reason)
        self._spawn(pw)

    def _stop(self, pw: _PoolWorker) -> None:
        """Terminate → grace → kill → grace.  A worker that ignores
        SIGTERM (stuck in C code, trapping the signal) is escalated to
        SIGKILL within one grace period instead of wedging the sweep."""
        process = pw.process
        if process is None:
            return
        escalated = False
        if process.is_alive():
            process.terminate()
            process.join(self.grace)
            if process.is_alive():
                escalated = True
                process.kill()
                process.join(self.grace)
        else:
            process.join(self.grace)
        if self.obs.active:
            self.obs.emit("pool.kill", worker=pw.name, escalated=escalated)

    def _close_conn(self, pw: _PoolWorker) -> None:
        if pw.conn is not None:
            try:
                pw.conn.close()
            except OSError:
                pass
            pw.conn = None

    def shutdown(self) -> None:
        """Stop every worker: polite shutdown request, then escalation."""
        for pw in self.workers:
            if pw.process is None:
                continue
            if not pw.busy and pw.process.is_alive():
                try:
                    pw.conn.send((MSG_SHUTDOWN,))
                except (OSError, ValueError):
                    pass
                pw.process.join(self.grace)
            if pw.process.is_alive():
                self._stop(pw)
            else:
                pw.process.join(self.grace)
            self._close_conn(pw)
        if self.obs.active:
            self.obs.emit("pool.stop", respawns=self.respawns,
                          reused=self.reused)

    # -- dispatch ------------------------------------------------------

    def has_idle(self) -> bool:
        return any(not pw.busy for pw in self.workers)

    def busy_count(self) -> int:
        return sum(1 for pw in self.workers if pw.busy)

    def dispatch(self, tag, spec: JobSpec) -> None:
        """Hand one job to an idle worker (caller checks :meth:`has_idle`)."""
        pw = next((w for w in self.workers if not w.busy), None)
        if pw is None:
            raise RuntimeError("dispatch with no idle worker")
        for attempt in (0, 1):
            try:
                pw.conn.send((MSG_JOB, tag, spec))
                break
            except (OSError, ValueError):
                # The worker died idle; replace it and retry once.
                self._stop(pw)
                self._respawn(pw, reason="dispatch")
                if attempt:
                    raise
        warm = pw.jobs_done > 0
        pw.tag = tag
        pw.spec = spec
        pw.dispatched_at = time.monotonic()
        pw.ping_sent_at = None
        if warm:
            self.reused += 1
        if self.obs.active:
            self.obs.emit("pool.dispatch", worker=pw.name, bench=spec.bench,
                          label=spec.label(), warm=warm)
            if warm:
                self.obs.metrics.inc("exec.pool_reuse")

    # -- completion / watchdog -----------------------------------------

    def poll(self) -> list[PoolEvent]:
        """One scheduler sweep: drain replies, enforce the per-job
        timeout, detect dead or unresponsive workers, respawn losses.
        Returns the jobs that finished (or failed) during the sweep."""
        events: list[PoolEvent] = []
        now = time.monotonic()
        for pw in self.workers:
            if self._drain(pw, events, now) is False:
                continue            # worker was replaced during drain
            if (pw.busy and self.timeout is not None
                    and now - pw.dispatched_at > self.timeout):
                events.append(PoolEvent(
                    tag=pw.tag, ok=False,
                    value=f"worker timed out after {self.timeout:g}s",
                    duration=now - pw.dispatched_at, worker=pw.name))
                pw.tag = None
                self._stop(pw)
                self._respawn(pw, reason="timeout")
                continue
            if not pw.process.is_alive():
                # Drain once more: the worker may have sent its reply
                # and exited between the drain above and this check.
                self._drain(pw, events, now)
                if pw.busy:
                    pw.process.join(self.grace)
                    events.append(PoolEvent(
                        tag=pw.tag, ok=False,
                        value=(f"worker crashed (exit code "
                               f"{pw.process.exitcode})"),
                        duration=now - pw.dispatched_at, worker=pw.name))
                    pw.tag = None
                self._respawn(pw, reason="crash")
                continue
            if not pw.busy:
                self._heartbeat(pw, now)
        return events

    def _drain(self, pw: _PoolWorker, events: list[PoolEvent],
               now: float) -> bool:
        """Read every buffered reply from one worker.  Returns False
        when the pipe died and the worker was replaced."""
        if pw.conn is None:
            return True
        while True:
            try:
                if not pw.conn.poll():
                    return True
                message = pw.conn.recv()
            except EOFError:
                # Clean close without a reply: the worker exited (or is
                # exiting) — classify by exit code like the spawn path.
                self._lost(pw, events, now, pipe_broken=False)
                return False
            except (OSError, ValueError):
                # Partial frame or dead descriptor: the transport is
                # unusable even if the process lives.
                self._lost(pw, events, now, pipe_broken=True)
                return False
            kind = message[0]
            if kind == REPLY_READY or kind == REPLY_PONG:
                pw.last_seen = now
                pw.ping_sent_at = None
            elif kind == REPLY_RESULT:
                __, tag, status, value = message
                if pw.busy and tag == pw.tag:
                    events.append(PoolEvent(
                        tag=tag, ok=(status == "ok"), value=value,
                        duration=now - pw.dispatched_at, worker=pw.name))
                    pw.tag = None
                    pw.spec = None
                    pw.jobs_done += 1
                    pw.last_seen = now

    def _lost(self, pw: _PoolWorker, events: list[PoolEvent], now: float,
              pipe_broken: bool) -> None:
        """The worker's transport died: fail its job (if any), stop the
        process, and respawn the slot."""
        was_alive = pw.process.is_alive()
        self._stop(pw)
        if pw.busy:
            if pipe_broken and was_alive:
                error = "worker pipe broken"
            else:
                error = f"worker crashed (exit code {pw.process.exitcode})"
            events.append(PoolEvent(
                tag=pw.tag, ok=False, value=error,
                duration=now - pw.dispatched_at, worker=pw.name))
            pw.tag = None
        self._respawn(pw, reason="pipe" if pipe_broken else "crash")

    def _heartbeat(self, pw: _PoolWorker, now: float) -> None:
        """Idle-worker liveness: ping after a quiet interval; a worker
        that neither pongs nor dies within the heartbeat grace is
        wedged — replace it before it eats a job."""
        if pw.ping_sent_at is not None:
            if now - pw.ping_sent_at > self.heartbeat_grace:
                self._stop(pw)
                self._respawn(pw, reason="heartbeat")
            return
        if now - pw.last_seen < self.heartbeat_interval:
            return
        pw.ping_token += 1
        try:
            pw.conn.send((MSG_PING, pw.ping_token))
            pw.ping_sent_at = now
        except (OSError, ValueError):
            self._stop(pw)
            self._respawn(pw, reason="pipe")
