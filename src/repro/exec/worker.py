"""Worker-side job execution.

:func:`execute_spec` runs one :class:`~repro.exec.spec.JobSpec` to a
JSON-safe payload dict.  It is a module-level function so it pickles
cleanly into ``multiprocessing`` children, and it deliberately bypasses
every cache layer — cache policy (in-process dict, disk store) lives in
the parent; workers only simulate.
"""

from __future__ import annotations

from repro.exec.spec import JobSpec


def execute_spec(spec: JobSpec) -> dict:
    """Simulate one job and return its serialised result payload."""
    # Imported lazily: repro.harness.runner imports repro.exec for the
    # store, and the simulator stack is heavy for non-worker users.
    from repro.harness import runner

    result = runner.simulate_spec(spec)
    return {"kind": spec.kind, "result": result.to_dict()}
