"""Worker-side job execution.

Two entry points:

* :func:`execute_spec` runs one :class:`~repro.exec.spec.JobSpec` to a
  JSON-safe payload dict.  It is a module-level function so it pickles
  cleanly into ``multiprocessing`` children, and it deliberately
  bypasses every *result* cache layer — result-cache policy
  (in-process dict, disk store) lives in the parent; workers only
  simulate.  (Pure build caches — decoded workload programs — stay
  warm inside the worker process across jobs; see
  :func:`repro.harness.runner.cached_program`.)
* :func:`pool_worker_main` is the long-lived warm-pool loop: import
  once, then serve ``job``/``ping`` requests over a duplex pipe until
  told to shut down (or the pipe dies).  See :mod:`repro.exec.pool`
  for the parent side and the protocol invariants.
"""

from __future__ import annotations

from repro.exec.spec import JobSpec

# -- request/reply protocol (parent -> worker | worker -> parent) ------
#
# Every message is a plain tuple whose first element is one of these
# tags.  Requests:   (MSG_JOB, tag, spec) | (MSG_PING, token)
#                    | (MSG_SHUTDOWN,)
# Replies:           (REPLY_READY,) once at startup,
#                    (REPLY_RESULT, tag, "ok"|"error", payload|message),
#                    (REPLY_PONG, token).
MSG_JOB = "job"
MSG_PING = "ping"
MSG_SHUTDOWN = "shutdown"
REPLY_READY = "ready"
REPLY_RESULT = "result"
REPLY_PONG = "pong"

#: The serving pool worker's request pipe, while :func:`pool_worker_main`
#: is running.  Lets worker-side code (and fault-injection tests) reach
#: the transport — e.g. to stream progress, or to simulate a pipe that
#: breaks mid-send.
_ACTIVE_CONN = None


def current_connection():
    """The request pipe of the running pool worker, or ``None`` outside
    :func:`pool_worker_main`."""
    return _ACTIVE_CONN


def execute_spec(spec: JobSpec) -> dict:
    """Simulate one job and return its serialised result payload."""
    # Imported lazily: repro.harness.runner imports repro.exec for the
    # store, and the simulator stack is heavy for non-worker users.
    from repro.harness import runner

    result = runner.simulate_spec(spec)
    return {"kind": spec.kind, "result": result.to_dict()}


def pool_worker_main(conn, worker_fn) -> None:
    """Serve jobs over ``conn`` until shutdown (the warm-pool body).

    The loop never lets a job exception kill the process: failures are
    reported as ``("result", tag, "error", message)`` and the worker
    stays warm for the next job.  Only transport death (pipe closed or
    unwritable — the parent is gone) or an explicit shutdown request
    ends the loop.  ``os._exit``/signals still kill the process, which
    the parent-side watchdog observes as a crash and respawns.
    """
    global _ACTIVE_CONN
    _ACTIVE_CONN = conn
    try:
        try:
            conn.send((REPLY_READY,))
        except (OSError, ValueError):
            return
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == MSG_SHUTDOWN:
                return
            if kind == MSG_PING:
                try:
                    conn.send((REPLY_PONG, message[1]))
                except (OSError, ValueError):
                    return
                continue
            if kind != MSG_JOB:
                continue                # unknown request: ignore, stay up
            tag, spec = message[1], message[2]
            try:
                reply = (REPLY_RESULT, tag, "ok", worker_fn(spec))
            except BaseException as exc:
                reply = (REPLY_RESULT, tag, "error",
                         f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (OSError, ValueError):
                return
            except Exception as exc:
                # The payload itself would not pickle: report that as
                # the job's failure instead of dying with a warm cache.
                try:
                    conn.send((REPLY_RESULT, tag, "error",
                               f"worker result not serialisable: "
                               f"{type(exc).__name__}: {exc}"))
                except Exception:
                    return
    finally:
        _ACTIVE_CONN = None
        try:
            conn.close()
        except OSError:
            pass
