"""Job specifications: one simulation point as a pure, hashable value.

A :class:`JobSpec` captures everything that determines a simulation's
outcome — benchmark, machine kind, composition size, scale, config
overrides — in canonical form (overrides as sorted item tuples).  Its
content address, :func:`spec_hash`, is a SHA-256 over canonical JSON
salted with :data:`SCHEMA_VERSION`, so it is stable across processes
and interpreter versions but changes whenever the result schema (or
simulator semantics, via a salt bump) changes.

Canonical JSON preserves value types: ``{"lsq_size": 1}`` and
``{"lsq_size": "1"}`` hash differently even though they *format*
identically in a human-readable label — the collision the old
label-keyed cache allowed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional

#: Bump whenever the stored result schema or simulator semantics change;
#: every on-disk record keyed under the old salt becomes a miss.
#: 2: sampled-simulation support (``sampling`` spec field; RunResult
#:    payloads may carry a ``sampling`` section).
#: 3: fault-injection support (``faults`` spec field; RunResult
#:    payloads may carry a ``resil`` section).
SCHEMA_VERSION = 3


def _freeze_overrides(overrides: Optional[Mapping[str, Any]]) -> tuple:
    """Normalise an override mapping to sorted, hashable item pairs."""
    if not overrides:
        return ()
    return tuple(sorted((str(k), v) for k, v in overrides.items()))


@dataclass(frozen=True)
class JobSpec:
    """A pure description of one simulation point.

    ``kind`` selects the machine: ``"edge"`` runs a TFlex composition
    (or the TRIPS baseline when ``trips`` is set), ``"risc"`` runs the
    out-of-order superscalar comparator.  Override mappings are frozen
    into sorted item tuples so equal configurations compare (and hash)
    equal regardless of construction order.
    """

    kind: str
    bench: str
    scale: int = 1
    ncores: int = 8
    trips: bool = False
    ideal_handshake: bool = False
    overrides: tuple = ()
    core_overrides: tuple = ()
    verify: bool = True
    #: Sampled-simulation parameters as frozen items (empty = full
    #: detail); see :class:`repro.sample.SamplingConfig`.
    sampling: tuple = ()
    #: Fault schedule as canonical JSON strings, one per event, in
    #: canonical order (empty = fault-free).  The spec stays agnostic
    #: of the fault model — :meth:`repro.resil.FaultSchedule.spec_items`
    #: is the encoder, ``FaultSchedule.from_spec_items`` the decoder.
    faults: tuple = ()

    @staticmethod
    def edge(bench: str, ncores: int = 8, trips: bool = False,
             scale: int = 1, ideal_handshake: bool = False,
             overrides: Optional[Mapping[str, Any]] = None,
             core_overrides: Optional[Mapping[str, Any]] = None,
             verify: bool = True,
             sampling: Optional[Mapping[str, Any]] = None,
             faults: Optional[tuple] = None) -> "JobSpec":
        if faults:
            if sampling:
                raise ValueError(
                    "fault injection and sampled simulation cannot "
                    "combine: a recomposition inside a fast-forward "
                    "region is undefined")
            if trips:
                raise ValueError(
                    "fault injection targets the composable TFlex "
                    "array, not the monolithic TRIPS baseline")
        # TRIPS ignores the requested composition size (the prototype is
        # fixed); normalise it out so equivalent points share one hash.
        return JobSpec(
            kind="edge", bench=bench, scale=scale,
            ncores=0 if trips else ncores, trips=trips,
            ideal_handshake=ideal_handshake,
            overrides=_freeze_overrides(overrides),
            core_overrides=_freeze_overrides(core_overrides),
            verify=verify,
            sampling=_freeze_overrides(sampling),
            faults=tuple(faults or ()))

    @staticmethod
    def risc(bench: str, scale: int = 1, verify: bool = True) -> "JobSpec":
        return JobSpec(kind="risc", bench=bench, scale=scale,
                       ncores=1, verify=verify)

    def overrides_dict(self) -> dict:
        return dict(self.overrides)

    def core_overrides_dict(self) -> dict:
        return dict(self.core_overrides)

    def sampling_dict(self) -> dict:
        return dict(self.sampling)

    def label(self) -> str:
        """Human-readable configuration label (display only — never a
        cache key; see :func:`spec_hash`)."""
        if self.kind == "risc":
            return "ooo"
        label = "trips" if self.trips else f"tflex-{self.ncores}"
        if self.ideal_handshake:
            label += "-ideal"
        for source in (self.overrides, self.core_overrides):
            for name, value in source:
                label += f"+{name}={value}"
        if self.sampling:
            label += "+sampled"
        if self.faults:
            label += f"+faults{len(self.faults)}"
        return label

    def canonical(self) -> dict:
        """JSON-safe canonical form; the hashing substrate."""
        return {
            "kind": self.kind,
            "bench": self.bench,
            "scale": self.scale,
            "ncores": self.ncores,
            "trips": self.trips,
            "ideal_handshake": self.ideal_handshake,
            "overrides": [[k, v] for k, v in self.overrides],
            "core_overrides": [[k, v] for k, v in self.core_overrides],
            "verify": self.verify,
            "sampling": [[k, v] for k, v in self.sampling],
            "faults": list(self.faults),
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))

    def to_dict(self) -> dict:
        return self.canonical()

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(JobSpec)}
        kwargs = {k: v for k, v in data.items() if k in known}
        for name in ("overrides", "core_overrides", "sampling"):
            kwargs[name] = tuple((k, v) for k, v in kwargs.get(name, ()))
        kwargs["faults"] = tuple(kwargs.get("faults", ()))
        return JobSpec(**kwargs)


def spec_hash(spec: JobSpec, salt: int = SCHEMA_VERSION) -> str:
    """Stable content address of a spec: SHA-256 of canonical JSON plus
    the schema/version salt."""
    payload = json.dumps({"salt": salt, "spec": spec.canonical()},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
