"""Adaptive sweep scheduling: longest-job-first from learned durations.

A sweep's wall-clock is dominated by its stragglers: with ``jobs``
workers and FIFO dispatch, a long point landing last serialises the
whole tail.  Classic makespan theory (LPT list scheduling) says to
dispatch the *longest* jobs first — but the executor only knows job
durations after running them.  :class:`DurationBook` closes the loop:
every completed job feeds an exponentially-weighted moving average
keyed by the job's *family* (benchmark x machine configuration x
scale), persisted as a sidecar next to the result store so later CLI
invocations start warm.

:func:`order_indices` turns a batch into a dispatch order:

* ``"ljf"`` (default) — jobs with a known family estimate run longest
  first; jobs from families never seen run *before* them, in input
  order (an unknown job may be the longest of all, and a cold book
  degrades to plain FIFO).
* ``"fifo"`` — input order, the pre-adaptive behaviour.

The estimates only reorder dispatch; they never gate or drop work, so
a wildly wrong estimate costs wall-clock, never correctness.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Optional, Sequence, Union

from repro.exec.spec import JobSpec
from repro.exec.store import advisory_lock

#: Dispatch policies understood by :func:`order_indices` (and the CLI's
#: ``--schedule`` flag).
POLICIES = ("ljf", "fifo")

#: EWMA weight of the newest observation.  High enough to track a
#: machine change within a few sweeps, low enough that one descheduled
#: outlier does not invert the ordering.
EWMA_ALPHA = 0.4

#: Sidecar schema version; unknown versions are ignored (cold book).
BOOK_SCHEMA = 1

#: Sidecar file name, resolved relative to a result-store root.
BOOK_NAME = "durations.json"


def job_family(spec: JobSpec) -> str:
    """The duration-estimate bucket for one spec.

    Benchmark, machine kind, composition size (or ``trips``), scale,
    and the sampled/fault-injected mode flags — the knobs that move
    runtime by integer factors.  Config overrides are deliberately
    *not* part of the key: ablation variants of a point usually run
    within a few percent of the base config, and folding them together
    is what lets a fresh ablation sweep start with useful estimates.
    """
    if spec.kind == "risc":
        machine = "risc"
    elif spec.trips:
        machine = "trips"
    else:
        machine = f"tflex{spec.ncores}"
    tags = ""
    if spec.sampling:
        # Fidelity matters: a coarse search rung (long fast-forwards)
        # and an accuracy-oriented run differ by integer factors, so
        # the fast-forward length joins the key.  Window/warmup shifts
        # move runtime by percents, not factors — folded together.
        ff = spec.sampling_dict().get("ff_blocks")
        tags += f"+sampled{ff}" if ff else "+sampled"
    if spec.faults:
        tags += "+faults"
    return f"{spec.bench}|{machine}|x{spec.scale}{tags}"


class DurationBook:
    """Per-family EWMA duration estimates with a persistent sidecar.

    With ``path=None`` the book is purely in-memory (estimates learned
    this run still help this run's retries — and the pool's dispatch
    order on later batches).  With a path, :meth:`flush` merges the
    session's estimates into the sidecar under an advisory file lock,
    so concurrent CLI invocations sharing one cache directory cannot
    shred each other's updates.
    """

    def __init__(self, path: Union[str, pathlib.Path, None] = None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self._estimates: dict[str, float] = self._read()
        self._touched: set[str] = set()

    @staticmethod
    def for_store_root(root: Union[str, pathlib.Path, None]) -> "DurationBook":
        """The book co-located with a result store (or an in-memory one
        when there is no store to sit next to)."""
        if root is None:
            return DurationBook()
        return DurationBook(pathlib.Path(root) / BOOK_NAME)

    # -- estimates -----------------------------------------------------

    def estimate(self, family: str) -> Optional[float]:
        return self._estimates.get(family)

    def estimate_for(self, spec: JobSpec) -> Optional[float]:
        return self.estimate(job_family(spec))

    def note(self, family: str, seconds: float) -> float:
        """Fold one observed duration into the family's EWMA."""
        seconds = max(float(seconds), 0.0)
        previous = self._estimates.get(family)
        value = (seconds if previous is None
                 else EWMA_ALPHA * seconds + (1.0 - EWMA_ALPHA) * previous)
        self._estimates[family] = value
        self._touched.add(family)
        return value

    def note_spec(self, spec: JobSpec, seconds: float) -> float:
        return self.note(job_family(spec), seconds)

    def __len__(self) -> int:
        return len(self._estimates)

    # -- persistence ---------------------------------------------------

    def _read(self) -> dict[str, float]:
        if self.path is None:
            return {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError, UnicodeDecodeError):
            return {}
        if (not isinstance(data, dict)
                or data.get("schema") != BOOK_SCHEMA
                or not isinstance(data.get("families"), dict)):
            return {}
        return {str(k): float(v) for k, v in data["families"].items()
                if isinstance(v, (int, float))}

    def flush(self) -> None:
        """Merge this session's touched families into the sidecar.

        Read-merge-write under the store's advisory lock: families this
        session never ran keep whatever a concurrent invocation wrote.
        """
        if self.path is None or not self._touched:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with advisory_lock(self.path.with_suffix(".lock")):
            merged = self._read()
            for family in sorted(self._touched):
                merged[family] = round(self._estimates[family], 6)
            record = {"schema": BOOK_SCHEMA, "families": merged}
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=".durations-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, sort_keys=True)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self._touched.clear()


def order_indices(specs: Sequence[JobSpec], todo: Sequence[int],
                  book: Optional[DurationBook],
                  policy: str = "ljf") -> list[int]:
    """Dispatch order over ``todo`` (indices into ``specs``).

    ``"fifo"`` keeps input order.  ``"ljf"`` runs unknown-duration jobs
    first (input order), then known families longest-first — so a cold
    book is exactly FIFO and a warm one fronts the stragglers.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown schedule policy {policy!r}; "
                         f"expected one of {POLICIES}")
    if policy == "fifo" or book is None or len(book) == 0:
        return list(todo)
    position = {index: rank for rank, index in enumerate(todo)}

    def sort_key(index: int) -> tuple:
        estimate = book.estimate_for(specs[index])
        if estimate is None:
            return (0, position[index], 0.0)
        return (1, 0, -estimate)

    return sorted(todo, key=sort_key)
