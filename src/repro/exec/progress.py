"""Live progress/ETA reporting for long sweeps.

Rate-limited single-line updates on a stream (stderr by default), with
elapsed time and a simple completed-rate ETA.  The clock is injectable
so tests can drive it deterministically.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressReporter:
    """Prints ``[done/total] pct elapsed eta`` lines, rate-limited."""

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 min_interval: float = 0.5,
                 clock: Callable[[], float] = time.monotonic,
                 prefix: str = "exec") -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.clock = clock
        self.prefix = prefix
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.retries = 0
        self._start = self.clock()
        self._last_emit = float("-inf")
        self._emitted = False

    def update(self, label: str = "", ok: bool = True,
               cached: bool = False) -> None:
        """Record one completed job; emit if the rate limit allows.

        ``cached`` marks jobs satisfied instantly from a result store;
        they count toward completion but not toward the ETA's rate
        estimate (a warm/cold mix would otherwise wildly underestimate
        the remaining time).
        """
        self.done += 1
        if not ok:
            self.failed += 1
        if cached:
            self.cached += 1
        now = self.clock()
        if now - self._last_emit >= self.min_interval or self.done == self.total:
            self._emit(now, label)
            self._last_emit = now

    def note_retry(self) -> None:
        """Record one retried attempt (the job is not done yet, so this
        never advances the counter — it only surfaces flakiness in the
        progress line)."""
        self.retries += 1

    def finish(self) -> None:
        """Terminate the progress line.

        Emits a final partial-state line when work happened but the last
        update was rate-limited away; writes nothing at all (not even
        the newline) when no line was ever emitted, so quiet runs leave
        the stream untouched.
        """
        if self.done < self.total and self.done:
            self._emit(self.clock(), "")
        if self._emitted:
            self.stream.write("\n")
            self.stream.flush()

    def render(self, now: Optional[float] = None, label: str = "") -> str:
        now = self.clock() if now is None else now
        elapsed = max(now - self._start, 1e-9)
        pct = 100.0 * self.done / self.total if self.total else 100.0
        executed = self.done - self.cached
        if self.done >= self.total:
            eta_text = _fmt_seconds(0.0)
        elif executed > 0:
            eta = elapsed / executed * (self.total - self.done)
            eta_text = _fmt_seconds(eta)
        else:
            eta_text = "?"
        text = (f"{self.prefix}: [{self.done}/{self.total}] {pct:3.0f}% "
                f"elapsed {_fmt_seconds(elapsed)} eta {eta_text}")
        if self.failed:
            text += f" failed {self.failed}"
        if self.retries:
            text += f" retries {self.retries}"
        if label:
            text += f" last={label}"
        return text

    def _emit(self, now: float, label: str) -> None:
        self._emitted = True
        self.stream.write("\r" + self.render(now, label).ljust(78))
        self.stream.flush()
