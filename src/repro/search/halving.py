"""Successive halving over fidelity tiers: the BEST-composition search.

The exhaustive way to find a benchmark's BEST composition evaluates
every candidate in full detail.  Successive halving spends most of its
budget at *cheap* fidelity instead: rung 0 evaluates the whole
candidate set with coarse sampled simulation, each rung promotes the
top ``1/eta`` fraction to the next (more faithful) tier, and only the
final rung — always full detail — decides the argmax.  With the
default three-tier ladder over the six-point composition sweep this
runs 6 coarse + 3 fine sampled evaluations and just 2 detailed ones
per benchmark, a 3x reduction in detailed-simulation work; the sampled
tiers only have to keep the true BEST *alive*, not rank it first,
which is a far weaker accuracy demand than estimating its cycles
(docs/SEARCH.md quantifies the safety margin).

Every evaluation is a plain :class:`~repro.exec.spec.JobSpec` routed
through :func:`repro.harness.runner.run_spec`, so results content-hash
into the persistent store, cold rungs fan out over the warm worker
pool with LJF dispatch, and a re-run of the same search is pure cache
replay.  The search itself adds no randomness: candidate order breaks
score ties (stable sort), and the seed only feeds the optional
deterministic subsample of oversized spaces — fixed seed, fixed
result.

Observability (docs/OBSERVABILITY.md): ``search.start`` /
``search.rung`` / ``search.best`` events; ``search.evals{fidelity=}``,
``search.eliminations`` and ``search.detailed_jobs`` counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import repro.obs as obs_lib
from repro.search.objective import Objective, get_objective
from repro.search.space import Candidate, SearchSpace

#: Sampling parameters of the built-in fidelity ladder at ``scale=1``,
#: chosen empirically on the golden suite (docs/SEARCH.md):  ``coarse``
#: always ranks the true BEST into the top 3 of 6 for all three
#: objectives, ``fine`` into the top 2 — exactly the containment the
#: 6 -> 3 -> 2 promotion schedule needs.
COARSE_SAMPLING = {"ff_blocks": 256, "window_blocks": 12, "warmup_blocks": 4}
FINE_SAMPLING = {"ff_blocks": 96, "window_blocks": 24, "warmup_blocks": 8}


@dataclass(frozen=True)
class FidelityTier:
    """One rung's evaluation fidelity: a name plus the sampled-engine
    parameters (``()`` = full detail), frozen like a JobSpec field."""

    name: str
    sampling: tuple = ()

    @staticmethod
    def make(name: str, sampling: Optional[dict] = None) -> "FidelityTier":
        frozen = (tuple(sorted((str(k), int(v)) for k, v in sampling.items()))
                  if sampling else ())
        return FidelityTier(name=name, sampling=frozen)

    @property
    def detailed(self) -> bool:
        return not self.sampling

    def sampling_dict(self) -> Optional[dict]:
        return dict(self.sampling) if self.sampling else None


#: The default ladder: coarse sampled -> fine sampled -> full detail.
DEFAULT_LADDER = (
    FidelityTier.make("coarse", COARSE_SAMPLING),
    FidelityTier.make("fine", FINE_SAMPLING),
    FidelityTier.make("detail"),
)


@dataclass(frozen=True)
class HalvingConfig:
    """Shape of one search: the fidelity ladder, the promotion factor,
    and the (subsample-only) seed."""

    ladder: tuple[FidelityTier, ...] = DEFAULT_LADDER
    eta: int = 2
    seed: int = 2007
    max_candidates: Optional[int] = None

    def validate(self) -> None:
        if not self.ladder:
            raise ValueError("halving ladder needs at least one tier")
        if not self.ladder[-1].detailed:
            raise ValueError(
                "the final halving tier must be full detail (the argmax "
                "has to be decided on exact cycle counts)")
        names = [tier.name for tier in self.ladder]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in ladder: {names}")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")


@dataclass
class RungReport:
    """What one rung of one benchmark's search did."""

    tier: str
    detailed: bool
    entered: list[str]                  # candidate labels evaluated
    scores: dict[str, float]            # label -> objective score
    promoted: list[str]
    eliminated: list[str]


@dataclass
class BenchSearchResult:
    """The BEST candidate for one benchmark, plus the full rung trail."""

    bench: str
    objective: str
    best: Candidate
    best_score: float
    rungs: list[RungReport] = field(default_factory=list)

    @property
    def best_label(self) -> str:
        return self.best.label()

    def detailed_jobs(self) -> int:
        return sum(len(r.entered) for r in self.rungs if r.detailed)

    def evaluations(self) -> dict[str, int]:
        return {r.tier: len(r.entered) for r in self.rungs}


@dataclass
class SearchResult:
    """Per-benchmark BEST compositions for one objective."""

    objective: str
    space: SearchSpace
    config: HalvingConfig
    per_bench: dict[str, BenchSearchResult]

    def best_labels(self) -> dict[str, str]:
        return {b: r.best_label for b, r in self.per_bench.items()}

    def best_ncores(self) -> dict[str, int]:
        return {b: r.best.ncores for b, r in self.per_bench.items()}

    def detailed_jobs(self) -> int:
        return sum(r.detailed_jobs() for r in self.per_bench.values())

    def exhaustive_detailed_jobs(self) -> int:
        """Detailed jobs the exhaustive sweep would run for the same
        answer: every candidate of every benchmark, in full detail."""
        return len(self.space.benchmarks) * len(self.space.candidates)

    def detail_reduction(self) -> float:
        """How many times fewer detailed jobs than exhaustive."""
        done = self.detailed_jobs()
        return self.exhaustive_detailed_jobs() / done if done else math.inf

    def total_evaluations(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for result in self.per_bench.values():
            for tier, count in result.evaluations().items():
                totals[tier] = totals.get(tier, 0) + count
        return totals

    def render(self) -> str:
        from repro.harness.reporting import format_table

        tiers = [tier.name for tier in self.config.ladder]
        headers = ["benchmark", "BEST", "score"] + [f"evals@{t}" for t in tiers]
        rows = []
        for bench in self.space.benchmarks:
            result = self.per_bench[bench]
            evals = result.evaluations()
            rows.append([bench, result.best_label,
                         f"{result.best_score:.3e}"]
                        + [evals.get(t, 0) for t in tiers])
        totals = self.total_evaluations()
        rows.append(["TOTAL", "", ""] + [totals.get(t, 0) for t in tiers])
        table = format_table(
            headers, rows,
            title=f"BEST composition search: objective={self.objective}")
        summary = (f"detailed jobs: {self.detailed_jobs()} vs "
                   f"{self.exhaustive_detailed_jobs()} exhaustive "
                   f"({self.detail_reduction():.1f}x fewer)")
        return table + "\n" + summary


def _promote_count(alive: int, eta: int) -> int:
    return max(1, math.ceil(alive / eta))


def search_best(space: SearchSpace, objective: str | Objective,
                config: Optional[HalvingConfig] = None,
                jobs: int = 1, progress: bool = False) -> SearchResult:
    """Find the BEST candidate per benchmark by successive halving.

    Each rung evaluates every still-alive candidate of every benchmark
    at that tier's fidelity (fanned out over the worker pool when
    ``jobs > 1``), scores them with ``objective``, and promotes the top
    ``1/eta`` fraction (at least one).  The final rung always runs full
    detail, so the returned score is exact.
    """
    # Lazy import: repro.harness imports repro.search for the figBest
    # driver, so the module-level dependency must stay one-directional.
    from repro.harness.runner import prewarm_specs, run_spec

    config = config if config is not None else HalvingConfig()
    config.validate()
    objective = (objective if isinstance(objective, Objective)
                 else get_objective(objective))
    if config.max_candidates is not None:
        space = space.subsample(config.max_candidates, config.seed)

    obs = obs_lib.current()
    if obs.active:
        obs.emit("search.start", objective=objective.name,
                 benchmarks=list(space.benchmarks),
                 candidates=[c.label() for c in space.candidates],
                 tiers=[t.name for t in config.ladder], eta=config.eta,
                 seed=config.seed)

    alive: dict[str, list[Candidate]] = {
        bench: list(space.candidates) for bench in space.benchmarks}
    reports: dict[str, list[RungReport]] = {b: [] for b in space.benchmarks}
    final_scores: dict[str, dict[Candidate, float]] = {}

    for rung, tier in enumerate(config.ladder):
        sampling = tier.sampling_dict()
        batch = [(bench, cand, space.spec_for(bench, cand, sampling))
                 for bench in space.benchmarks for cand in alive[bench]]
        if jobs > 1 and len(batch) > 1:
            prewarm_specs([spec for __, __c, spec in batch], jobs=jobs,
                          progress=progress)
        scored: dict[str, dict[Candidate, float]] = {
            b: {} for b in space.benchmarks}
        for bench, cand, spec in batch:
            scored[bench][cand] = objective(run_spec(spec))
            if obs.active:
                obs.metrics.inc("search.evals", fidelity=tier.name,
                                objective=objective.name)

        last = rung == len(config.ladder) - 1
        for bench in space.benchmarks:
            ranked = sorted(alive[bench],
                            key=lambda c: -scored[bench][c])  # stable: ties
                                                              # keep space order
            keep = (ranked if last
                    else ranked[:_promote_count(len(ranked), config.eta)])
            dropped = [c for c in alive[bench] if c not in keep]
            reports[bench].append(RungReport(
                tier=tier.name, detailed=tier.detailed,
                entered=[c.label() for c in alive[bench]],
                scores={c.label(): scored[bench][c] for c in alive[bench]},
                promoted=[c.label() for c in keep],
                eliminated=[c.label() for c in dropped]))
            if obs.active:
                obs.emit("search.rung", bench=bench,
                         objective=objective.name, rung=rung, tier=tier.name,
                         fidelity="detail" if tier.detailed else "sampled",
                         alive=len(alive[bench]), promoted=len(keep),
                         eliminated=len(dropped))
                if dropped:
                    obs.metrics.inc("search.eliminations", len(dropped),
                                    objective=objective.name, tier=tier.name)
                if tier.detailed:
                    obs.metrics.inc("search.detailed_jobs",
                                    len(alive[bench]),
                                    objective=objective.name)
            alive[bench] = keep
        if last:
            final_scores = scored

    per_bench: dict[str, BenchSearchResult] = {}
    for bench in space.benchmarks:
        # The final rung left alive[bench] ranked by detailed score with
        # ties in space order, so index 0 is the stable argmax — the
        # same tie-break as ``max`` over the exhaustive sweep's labels.
        best = alive[bench][0]
        per_bench[bench] = BenchSearchResult(
            bench=bench, objective=objective.name, best=best,
            best_score=final_scores[bench][best], rungs=reports[bench])
        if obs.active:
            obs.emit("search.best", bench=bench, objective=objective.name,
                     best=best.label(),
                     score=final_scores[bench][best],
                     detailed_jobs=per_bench[bench].detailed_jobs())

    return SearchResult(objective=objective.name, space=space, config=config,
                        per_bench=per_bench)
