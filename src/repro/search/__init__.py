"""``repro.search`` — BEST-composition design-space search.

The paper's headline curves (figures 6-8) hinge on the per-application
**BEST** composition: the core count maximizing speedup, perf/area, or
perf^2/W for each benchmark.  This package finds BEST without paying
for the exhaustive detailed sweep, by **successive halving over
fidelity tiers**: cheap sampled simulation ranks the whole candidate
set, each rung promotes the top fraction to higher fidelity, and only
the final (full-detail) rung decides the argmax.

* :mod:`repro.search.space` — :class:`SearchSpace` / :class:`Candidate`:
  the explicit candidate set, resolving to ordinary job specs.
* :mod:`repro.search.objective` — the three BEST objectives, shared
  with the figure drivers' models.
* :mod:`repro.search.halving` — the halving engine, its fidelity
  ladder, and the per-benchmark :class:`SearchResult` trail.

Entry points: ``repro search`` on the CLI, or
:func:`repro.harness.fig_best` for the figure-style driver.  See
docs/SEARCH.md.
"""

from repro.search.space import (
    DEFAULT_CORE_COUNTS,
    Candidate,
    SearchSpace,
    default_space,
)
from repro.search.objective import (
    OBJECTIVE_NAMES,
    OBJECTIVES,
    Objective,
    get_objective,
)
from repro.search.halving import (
    COARSE_SAMPLING,
    DEFAULT_LADDER,
    FINE_SAMPLING,
    BenchSearchResult,
    FidelityTier,
    HalvingConfig,
    RungReport,
    SearchResult,
    search_best,
)

__all__ = [
    "DEFAULT_CORE_COUNTS",
    "Candidate",
    "SearchSpace",
    "default_space",
    "OBJECTIVE_NAMES",
    "OBJECTIVES",
    "Objective",
    "get_objective",
    "COARSE_SAMPLING",
    "DEFAULT_LADDER",
    "FINE_SAMPLING",
    "BenchSearchResult",
    "FidelityTier",
    "HalvingConfig",
    "RungReport",
    "SearchResult",
    "search_best",
]
