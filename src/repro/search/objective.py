"""Search objectives: the scalar a BEST search maximizes.

One :class:`Objective` per figure of the paper's BEST lines:

* ``speedup`` — raw performance (1/cycles), figure 6.  Normalizing by
  the one-core run divides every candidate's score by the same
  per-benchmark constant, so the raw score has the identical argmax.
* ``perf_per_area`` — performance per mm^2 of the composition's cores,
  figure 7 (same area model as :class:`repro.power.AreaModel`).
* ``perf2_per_watt`` — performance^2 per watt (the ED^-1 proxy),
  figure 8 (same formula as :meth:`repro.power.EnergyModel`).

Scores are pure functions of a :class:`~repro.harness.runner.RunResult`
— sampled and detailed evaluations of the same candidate score through
the same code, which is what lets the halving rungs compare across
fidelity tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.power import AreaModel, EnergyModel

#: Objective names, in figure order (also the CLI's ``--objective``
#: vocabulary; ``all`` expands to this tuple).
OBJECTIVE_NAMES = ("speedup", "perf_per_area", "perf2_per_watt")


@dataclass(frozen=True)
class Objective:
    """A named, maximized score over one run."""

    name: str
    figure: str
    score: Callable = field(repr=False)

    def __call__(self, run) -> float:
        return self.score(run)


def _speedup(run) -> float:
    return run.performance


def _perf_per_area(run, area: AreaModel = AreaModel()) -> float:
    if not run.cycles:
        return 0.0
    return 1.0 / (run.cycles * area.processor_mm2(run.num_cores))


def _perf2_per_watt(run) -> float:
    if not run.cycles:
        return 0.0
    return EnergyModel.perf2_per_watt(run.cycles, run.power.total)


OBJECTIVES: dict[str, Objective] = {
    "speedup": Objective("speedup", "fig6", _speedup),
    "perf_per_area": Objective("perf_per_area", "fig7", _perf_per_area),
    "perf2_per_watt": Objective("perf2_per_watt", "fig8", _perf2_per_watt),
}


def get_objective(name: str) -> Objective:
    """Look an objective up by name, with an actionable error."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; expected one of "
            f"{OBJECTIVE_NAMES}") from None
