"""Composition search spaces: the candidate set one BEST search ranks.

The paper's BEST lines (figures 6-8) pick, per application, the
composition that maximizes an objective.  A :class:`SearchSpace` makes
that candidate set explicit: an ordered tuple of :class:`Candidate`
configurations (composition size plus optional config overrides), each
of which resolves to a normal :class:`~repro.exec.spec.JobSpec` at any
fidelity tier — so every evaluation the search performs content-hashes
into the existing result store exactly like a sweep point would.

Candidate order is semantically meaningful: scores are ranked with a
*stable* sort, so ties resolve to the earliest candidate.  The default
space lists composition sizes ascending, matching the tie-break of the
exhaustive drivers (``max`` over ``tflex_labels`` returns the first,
i.e. smallest, maximal composition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.exec.spec import JobSpec
from repro.workloads.data import Lcg

#: Composition sizes of the paper's sweep (figure 6's x-axis).
DEFAULT_CORE_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class Candidate:
    """One point of the design space: a composition size plus optional
    config overrides (frozen to sorted item tuples, like JobSpec)."""

    ncores: int
    overrides: tuple = ()
    core_overrides: tuple = ()

    @staticmethod
    def make(ncores: int,
             overrides: Optional[Mapping[str, Any]] = None,
             core_overrides: Optional[Mapping[str, Any]] = None) -> "Candidate":
        freeze = (lambda m: tuple(sorted((str(k), v) for k, v in m.items()))
                  if m else ())
        return Candidate(ncores=ncores, overrides=freeze(overrides),
                         core_overrides=freeze(core_overrides))

    def label(self) -> str:
        """The figure-driver label this candidate corresponds to."""
        text = f"tflex-{self.ncores}"
        for source in (self.overrides, self.core_overrides):
            for name, value in source:
                text += f"+{name}={value}"
        return text


@dataclass(frozen=True)
class SearchSpace:
    """The candidate set plus the workload axis a search runs over."""

    benchmarks: tuple[str, ...]
    candidates: tuple[Candidate, ...]
    scale: int = 1

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("search space needs at least one benchmark")
        if not self.candidates:
            raise ValueError("search space needs at least one candidate")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("search space candidates must be unique")

    def __len__(self) -> int:
        return len(self.candidates)

    def spec_for(self, bench: str, candidate: Candidate,
                 sampling: Optional[Mapping[str, Any]] = None) -> JobSpec:
        """The job spec evaluating ``candidate`` on ``bench`` at one
        fidelity (``sampling=None`` is full detail)."""
        return JobSpec.edge(
            bench, ncores=candidate.ncores, scale=self.scale,
            overrides=dict(candidate.overrides) or None,
            core_overrides=dict(candidate.core_overrides) or None,
            sampling=sampling)

    def subsample(self, max_candidates: int, seed: int) -> "SearchSpace":
        """A deterministic subset of at most ``max_candidates``
        candidates (seeded draw, original order preserved) — the escape
        hatch for spaces too large to even coarse-evaluate in full."""
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if max_candidates >= len(self.candidates):
            return self
        rng = Lcg(seed)
        chosen: set[int] = set()
        while len(chosen) < max_candidates:
            chosen.add(rng.next() % len(self.candidates))
        kept = tuple(c for i, c in enumerate(self.candidates) if i in chosen)
        return SearchSpace(benchmarks=self.benchmarks, candidates=kept,
                           scale=self.scale)


def default_space(benchmarks: Sequence[str],
                  core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
                  scale: int = 1) -> SearchSpace:
    """The figure-6 composition sweep as a search space: one candidate
    per composition size, ascending (the exhaustive drivers' order)."""
    return SearchSpace(
        benchmarks=tuple(benchmarks),
        candidates=tuple(Candidate.make(n) for n in core_counts),
        scale=scale)
