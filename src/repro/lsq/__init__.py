"""Distributed load/store queues with NACK-based overflow handling."""

from repro.lsq.bank import LsqBank, LsqEntry, LsqResult, LsqStats
from repro.lsq.storeset import StoreSetPredictor

__all__ = ["LsqBank", "LsqEntry", "LsqResult", "LsqStats", "StoreSetPredictor"]
