"""Store-set dependence prediction (Chrysos & Emer style, block-keyed).

The baseline recovery for a load/store dependence violation is blunt:
the violating load replays and thereafter waits for *all* older stores
(`ComposedProcessor.older_stores_resolved`).  A store-set predictor
remembers *which* stores a load actually conflicted with and delays the
load only until those specific stores have resolved — preserving memory
parallelism for the independent ones.

Static memory operations are keyed by ``(block label, LSQ id)``; a
load's store set accumulates the keys of stores that violated it.  The
structure is bounded like hardware: at most ``max_set`` stores per load
and ``max_loads`` tracked loads (LRU eviction), so mispredictions decay
instead of accreting forever.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


MemKey = tuple[str, int]    # (block label, LSQ id)


@dataclass
class StoreSetStats:
    violations_recorded: int = 0
    loads_tracked: int = 0
    waits: int = 0
    evictions: int = 0


class StoreSetPredictor:
    """Per-processor dependence predictor over static memory operations."""

    def __init__(self, max_loads: int = 64, max_set: int = 4) -> None:
        self.max_loads = max_loads
        self.max_set = max_set
        self._sets: OrderedDict[MemKey, list[MemKey]] = OrderedDict()
        self.stats = StoreSetStats()

    def record_violation(self, load_key: MemKey, store_key: MemKey) -> None:
        """A store at ``store_key`` violated the load at ``load_key``."""
        self.stats.violations_recorded += 1
        stores = self._sets.get(load_key)
        if stores is None:
            if len(self._sets) >= self.max_loads:
                self._sets.popitem(last=False)
                self.stats.evictions += 1
            stores = []
            self._sets[load_key] = stores
            self.stats.loads_tracked += 1
        self._sets.move_to_end(load_key)
        if store_key not in stores:
            stores.append(store_key)
            del stores[self.max_set:]

    def tracked(self, load_key: MemKey) -> bool:
        return load_key in self._sets

    def store_set(self, load_key: MemKey) -> list[MemKey]:
        return list(self._sets.get(load_key, ()))

    def must_wait(self, load_key: MemKey, load_gseq: int, load_lsq: int,
                  inflight) -> bool:
        """True while a predicted-conflicting store is still unresolved.

        ``inflight`` iterates the processor's active block instances
        (oldest first).  A predicted store blocks the load when it
        belongs to an older point of the program order — an older block,
        or the same block at a lower LSQ id — and its slot has not yet
        resolved (store executed or NULL fired).
        """
        stores = self._sets.get(load_key)
        if not stores:
            return False
        blocking: dict[str, set[int]] = {}
        for label, lsq in stores:
            blocking.setdefault(label, set()).add(lsq)
        for instance in inflight:
            if instance.squashed or instance.gseq > load_gseq:
                continue
            lsqs = blocking.get(instance.block.label)
            if not lsqs:
                continue
            for lsq in lsqs:
                if instance.gseq == load_gseq and lsq >= load_lsq:
                    continue    # not older in program order
                if lsq in instance.block.store_ids and \
                        lsq not in instance.resolved_store_slots:
                    self.stats.waits += 1
                    return True
        return False
