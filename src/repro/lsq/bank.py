"""One address-interleaved load/store queue bank.

TFlex partitions its LSQ by data address with the same hash as the L1
D-cache banks (paper section 4.5), so every memory access to a given
cache line is disambiguated at a single bank.  Because each bank holds
fewer entries than the worst case (44 per core, versus up to 32 memory
operations x N blocks in flight), a bank can fill up; following
Sethumadhavan et al., overflow is handled with a low-overhead **NACK**:
the access is refused and the issuing core retries.

Global memory order is the pair ``(block gseq, lsq_id)`` — blocks are
totally ordered by the fetch sequence, and LSQ IDs order accesses within
a block.  Loads execute speculatively; a store arriving *after* a
younger overlapping load has executed raises a dependence violation,
which the processor repairs by flushing from the load's block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


@dataclass(slots=True)
class LsqEntry:
    """One in-flight memory operation resident in the bank."""

    gseq: int          # block fetch sequence number (global age)
    lsq_id: int        # program order within the block
    is_store: bool
    addr: int
    size: int
    value: object = None
    fp: bool = False
    ctx: int = 0       # thread context (threads never alias each other)
    #: Global memory order ``(gseq, lsq_id)``; materialized once so the
    #: age-search loops compare tuples without property-call overhead.
    order: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.order = (self.gseq, self.lsq_id)

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size

    def exact_match(self, addr: int, size: int) -> bool:
        return self.addr == addr and self.size == size


class LsqResult(Enum):
    """Outcome of presenting a memory operation to the bank."""

    OK = "ok"
    NACK = "nack"            # bank full: retry later
    FORWARD = "forward"      # load satisfied by an older in-flight store
    CONFLICT = "conflict"    # inexact overlap with an older store: replay


@dataclass
class LsqStats:
    loads: int = 0
    stores: int = 0
    forwards: int = 0
    nacks: int = 0
    violations: int = 0
    conflicts: int = 0
    searches: int = 0
    peak_occupancy: int = 0


@dataclass(slots=True)
class LoadOutcome:
    """What the bank decided for a load."""

    result: LsqResult
    value: object = None           # forwarded value when result is FORWARD
    conflict_gseq: Optional[int] = None   # older store blocking a CONFLICT
    conflict_lsq: Optional[int] = None


@dataclass(slots=True)
class StoreOutcome:
    """What the bank decided for a store."""

    result: LsqResult
    violation_gseq: Optional[int] = None   # oldest violating load's block
    violation_lsq: Optional[int] = None    # that load's LSQ id (throttle key)


class LsqBank:
    """Fixed-capacity LSQ bank with forwarding and violation detection."""

    def __init__(self, capacity: int = 44, name: str = "lsq") -> None:
        self.capacity = capacity
        self.name = name
        self.stats = LsqStats()
        self._entries: list[LsqEntry] = []

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def _note_occupancy(self) -> None:
        if len(self._entries) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._entries)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def load(self, gseq: int, lsq_id: int, addr: int, size: int,
             fp: bool = False, ctx: int = 0) -> LoadOutcome:
        """Present a load; inserts it on success.

        FORWARD returns the youngest older store's value for an exact
        address/size match; CONFLICT reports an inexact overlap with an
        older store (the load must be replayed after that store commits).
        Ordering applies within one thread context only (SMT threads
        sharing a bank have disjoint address spaces).
        """
        if self.full:
            self.stats.nacks += 1
            return LoadOutcome(LsqResult.NACK)
        self.stats.loads += 1
        self.stats.searches += 1

        order = (gseq, lsq_id)
        best: Optional[LsqEntry] = None
        for entry in self._entries:
            if entry.ctx != ctx or not entry.is_store or entry.order >= order:
                continue
            if entry.exact_match(addr, size):
                if best is None or entry.order > best.order:
                    best = entry
            elif entry.overlaps(addr, size):
                self.stats.conflicts += 1
                return LoadOutcome(LsqResult.CONFLICT,
                                   conflict_gseq=entry.gseq,
                                   conflict_lsq=entry.lsq_id)

        self._entries.append(LsqEntry(gseq, lsq_id, False, addr, size,
                                      fp=fp, ctx=ctx))
        self._note_occupancy()
        if best is not None:
            if best.fp != fp:
                self.stats.conflicts += 1
                return LoadOutcome(LsqResult.CONFLICT,
                                   conflict_gseq=best.gseq,
                                   conflict_lsq=best.lsq_id)
            self.stats.forwards += 1
            return LoadOutcome(LsqResult.FORWARD, value=best.value)
        return LoadOutcome(LsqResult.OK)

    def store(self, gseq: int, lsq_id: int, addr: int, size: int,
              value: object, fp: bool = False, ctx: int = 0) -> StoreOutcome:
        """Present a store; inserts it on success.

        Detects younger already-executed loads that overlap — a
        dependence violation the processor must repair by flushing from
        the oldest violating load's block.
        """
        if self.full:
            self.stats.nacks += 1
            return StoreOutcome(LsqResult.NACK)
        self.stats.stores += 1
        self.stats.searches += 1

        order = (gseq, lsq_id)
        violator: Optional[LsqEntry] = None
        for entry in self._entries:
            if entry.ctx != ctx or entry.is_store or entry.order <= order:
                continue
            if entry.overlaps(addr, size):
                if violator is None or entry.order < violator.order:
                    violator = entry

        self._entries.append(LsqEntry(gseq, lsq_id, True, addr, size,
                                      value=value, fp=fp, ctx=ctx))
        self._note_occupancy()
        if violator is not None:
            self.stats.violations += 1
            return StoreOutcome(LsqResult.CONFLICT, violation_gseq=violator.gseq,
                                violation_lsq=violator.lsq_id)
        return StoreOutcome(LsqResult.OK)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stores_of_block(self, gseq: int, ctx: int = 0) -> list[LsqEntry]:
        """This block's stores resident here, in LSQ-ID order (commit drain)."""
        stores = [e for e in self._entries
                  if e.is_store and e.gseq == gseq and e.ctx == ctx]
        stores.sort(key=lambda e: e.lsq_id)
        return stores

    def store_count_of_block(self, gseq: int, ctx: int = 0) -> int:
        """Number of this block's stores resident here (commit-command
        sizing; avoids materializing and sorting the drain list)."""
        count = 0
        for e in self._entries:
            if e.is_store and e.gseq == gseq and e.ctx == ctx:
                count += 1
        return count

    def release_block(self, gseq: int, ctx: int = 0) -> int:
        """Remove all entries of a committed block. Returns count removed."""
        before = len(self._entries)
        self._entries = [e for e in self._entries
                         if e.gseq != gseq or e.ctx != ctx]
        return before - len(self._entries)

    def squash_from(self, gseq: int, ctx: int = 0) -> int:
        """Remove a context's entries for blocks >= gseq (pipeline flush)."""
        before = len(self._entries)
        self._entries = [e for e in self._entries
                         if e.gseq < gseq or e.ctx != ctx]
        return before - len(self._entries)

    def entries_snapshot(self) -> list[LsqEntry]:
        """Copy of current entries (tests/diagnostics)."""
        return list(self._entries)

    def youngest_gseq(self, ctx: int = 0) -> Optional[int]:
        """Age of the youngest same-context block occupying this bank.

        Used by the overflow policy: a NACKed access from an *older*
        block can only make progress if younger occupants are flushed
        (they cannot commit before it).  Other contexts' occupancy
        drains at their own commits, so only the requester's context is
        considered."""
        return max((e.gseq for e in self._entries if e.ctx == ctx),
                   default=None)
