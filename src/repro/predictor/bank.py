"""Per-core predictor bank: exit + target prediction with checkpointing.

Each core carries one complete bank (8K + 256 bits in the paper's
sizing).  A block is predicted at its owner core's bank; because the
owner hash is stable for a fixed composition, the same block always
trains the same bank and capacity scales with composition size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.program import BLOCK_STRIDE
from repro.predictor.exits import (
    EXIT_BITS,
    EXIT_MASK,
    ExitPredictor,
    ExitPrediction,
    GLOBAL_HISTORY_EXITS,
    LOCAL_HISTORY_EXITS,
    _CONF_MAX,
    push_history,
)
from repro.predictor.ras import DistributedRas, RasCheckpoint
from repro.predictor.targets import BranchKind, TargetPredictor

_LOCAL_HIST_MASK = (1 << (EXIT_BITS * LOCAL_HISTORY_EXITS)) - 1
_GLOBAL_HIST_MASK = (1 << (EXIT_BITS * GLOBAL_HISTORY_EXITS)) - 1


@dataclass
class PredictorCheckpoint:
    """Undo state for one prediction (flush repair)."""

    exit_prediction: ExitPrediction
    ras_checkpoint: Optional[RasCheckpoint] = None


@dataclass
class Prediction:
    """A complete next-block prediction."""

    block_addr: int
    exit_id: int
    kind: BranchKind
    next_addr: int
    next_global_history: int
    checkpoint: PredictorCheckpoint
    ras_core: Optional[int] = None     # participating core messaged for RAS ops


class PredictorBank:
    """One core's next-block predictor."""

    def __init__(self, local_l1: int = 64, local_l2: int = 128,
                 global_entries: int = 512, choice_entries: int = 512,
                 btype_entries: int = 256, btb_entries: int = 128,
                 ctb_entries: int = 16, latency: int = 3) -> None:
        self.exits = ExitPredictor(local_l1, local_l2, global_entries, choice_entries)
        self.targets = TargetPredictor(btype_entries, btb_entries, ctb_entries)
        self.latency = latency

    def predict(self, block_addr: int, global_history: int,
                ras: DistributedRas) -> Prediction:
        """Predict the next block after ``block_addr``.

        Speculatively updates local history and the RAS; the returned
        checkpoint undoes both if the block is squashed."""
        block_num = block_addr // BLOCK_STRIDE
        exit_prediction = self.exits.predict(block_num, global_history)
        kind, target = self.targets.predict(block_addr, exit_prediction.exit_id)

        ras_checkpoint = None
        ras_core = None
        if kind is BranchKind.CALL:
            ras_checkpoint = ras.push(block_addr + BLOCK_STRIDE)
            ras_core = ras.top_core
        elif kind is BranchKind.RETURN:
            target, ras_checkpoint = ras.pop()
            ras_core = ras.top_core

        return Prediction(
            block_addr=block_addr,
            exit_id=exit_prediction.exit_id,
            kind=kind,
            next_addr=target,
            next_global_history=push_history(
                global_history, exit_prediction.exit_id, GLOBAL_HISTORY_EXITS),
            checkpoint=PredictorCheckpoint(exit_prediction, ras_checkpoint),
            ras_core=ras_core,
        )

    def update(self, prediction: Prediction, actual_exit: int,
               actual_kind: BranchKind, actual_target: int) -> None:
        """Train with the resolved block (called at commit)."""
        block_num = prediction.block_addr // BLOCK_STRIDE
        self.exits.update(block_num, prediction.checkpoint.exit_prediction, actual_exit)
        self.targets.update(prediction.block_addr, actual_exit, actual_kind, actual_target)

    def observe_commit(self, block_addr: int, global_history: int,
                       ras: DistributedRas, actual_exit: int,
                       actual_kind: BranchKind, actual_next: int) -> int:
        """Commit-order warm-up step; returns the next global history.

        Equivalent table/RAS state to the full speculative sequence —
        ``predict``, then on a wrong next-block ``exits.repair`` +
        ``ras.restore`` + the actual RAS op, then ``update`` — but
        fused: shared table entries are fetched once, no prediction or
        checkpoint objects are allocated (an undone-on-mispredict RAS
        push/pop nets out to applying only the surviving op), and stats
        are not maintained.  This is the sampled-simulation
        fast-forward hot path (:meth:`ShadowUarch.observe`); the cycle
        simulator keeps the allocating sequence, whose checkpoints it
        needs for flush repair.
        """
        exits = self.exits
        block_num = block_addr // BLOCK_STRIDE

        # Exit prediction (tournament), reusing each entry for training.
        hist = exits._local_hist
        l1 = block_num % len(hist)
        local_history = hist[l1]
        pattern = exits._local_pattern
        local_entry = pattern[local_history % len(pattern)]
        local_exit = local_entry.exit_id
        pattern = exits._global_pattern
        global_entry = pattern[(global_history ^ block_num) % len(pattern)]
        global_exit = global_entry.exit_id
        choice = exits._choice
        ci = (global_history ^ (block_num * 7)) % len(choice)
        exit_id = global_exit if choice[ci] >= 2 else local_exit

        # Target prediction (Btype + BTB/CTB/RAS/sequential).
        targets = self.targets
        key = block_num * 8 + exit_id
        kind = targets._btype[key % len(targets._btype)]
        if kind is BranchKind.SEQ:
            target = block_addr + BLOCK_STRIDE
        elif kind is BranchKind.RETURN:
            target = ras._stack[(ras._top - 1) % ras.capacity] \
                if ras._top else 0
        else:
            table = targets._btb if kind is BranchKind.BRANCH \
                else targets._ctb
            entry = table[key % len(table)]
            target = entry.target if entry.key == key \
                else block_addr + BLOCK_STRIDE

        # A mispredicted block's speculative history push is replaced
        # by the corrected exit (``exits.repair(actual_exit)``), and
        # its RAS op is rolled back before the actual op applies — so
        # only the surviving exit/op touches state.
        if target != actual_next:
            survivor_exit, survivor_kind = actual_exit, actual_kind
        else:
            survivor_exit, survivor_kind = exit_id, kind
        hist[l1] = ((local_history << EXIT_BITS)
                    | (survivor_exit & EXIT_MASK)) & _LOCAL_HIST_MASK
        if survivor_kind is BranchKind.CALL:
            slot = ras._top % ras.capacity
            ras._stack[slot] = block_addr + BLOCK_STRIDE
            ras._top += 1
        elif survivor_kind is BranchKind.RETURN:
            if ras._top:
                ras._top -= 1

        # Train the exit patterns (inlined ``_PatternEntry.update``)
        # and the choice table with the resolved exit.
        if local_entry.exit_id == actual_exit:
            if local_entry.confidence < _CONF_MAX:
                local_entry.confidence += 1
        elif local_entry.confidence > 0:
            local_entry.confidence -= 1
        else:
            local_entry.exit_id = actual_exit
            local_entry.confidence = 1
        if global_entry.exit_id == actual_exit:
            if global_entry.confidence < _CONF_MAX:
                global_entry.confidence += 1
        elif global_entry.confidence > 0:
            global_entry.confidence -= 1
        else:
            global_entry.exit_id = actual_exit
            global_entry.confidence = 1
        local_ok = local_exit == actual_exit
        if local_ok != (global_exit == actual_exit):
            if local_ok:
                if choice[ci] > 0:
                    choice[ci] -= 1
            elif choice[ci] < 3:
                choice[ci] += 1

        # Train the target tables with the resolved exit branch.
        key = block_num * 8 + actual_exit
        kind = actual_kind
        if kind is BranchKind.BRANCH \
                and actual_next == block_addr + BLOCK_STRIDE:
            kind = BranchKind.SEQ
        targets._btype[key % len(targets._btype)] = kind
        if kind is BranchKind.BRANCH:
            entry = targets._btb[key % len(targets._btb)]
            entry.key, entry.target = key, actual_next
        elif kind is BranchKind.CALL:
            entry = targets._ctb[key % len(targets._ctb)]
            entry.key, entry.target = key, actual_next

        return ((global_history << EXIT_BITS)
                | (survivor_exit & EXIT_MASK)) & _GLOBAL_HIST_MASK

    def repair(self, prediction: Prediction, ras: DistributedRas,
               actual_exit: Optional[int] = None) -> None:
        """Undo this prediction's speculative state (flush, youngest-first)."""
        self.exits.repair(prediction.checkpoint.exit_prediction, actual_exit)
        if prediction.checkpoint.ras_checkpoint is not None:
            ras.restore(prediction.checkpoint.ras_checkpoint)

    def swap_state(self, other: "PredictorBank") -> None:
        """Exchange all table contents with a same-geometry bank in
        O(1) (:meth:`ExitPredictor.swap_state`)."""
        self.exits.swap_state(other.exits)
        self.targets.swap_state(other.targets)

    def state_dict(self) -> dict:
        """JSON-safe snapshot of both table sets (stats excluded)."""
        return {"exits": self.exits.state_dict(),
                "targets": self.targets.state_dict()}

    def load_state(self, state: dict) -> None:
        """Replace all table contents with a :meth:`state_dict` snapshot."""
        self.exits.load_state(state["exits"])
        self.targets.load_state(state["targets"])
