"""Per-core predictor bank: exit + target prediction with checkpointing.

Each core carries one complete bank (8K + 256 bits in the paper's
sizing).  A block is predicted at its owner core's bank; because the
owner hash is stable for a fixed composition, the same block always
trains the same bank and capacity scales with composition size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.program import BLOCK_STRIDE
from repro.predictor.exits import (
    ExitPredictor,
    ExitPrediction,
    GLOBAL_HISTORY_EXITS,
    push_history,
)
from repro.predictor.ras import DistributedRas, RasCheckpoint
from repro.predictor.targets import BranchKind, TargetPredictor


@dataclass
class PredictorCheckpoint:
    """Undo state for one prediction (flush repair)."""

    exit_prediction: ExitPrediction
    ras_checkpoint: Optional[RasCheckpoint] = None


@dataclass
class Prediction:
    """A complete next-block prediction."""

    block_addr: int
    exit_id: int
    kind: BranchKind
    next_addr: int
    next_global_history: int
    checkpoint: PredictorCheckpoint
    ras_core: Optional[int] = None     # participating core messaged for RAS ops


class PredictorBank:
    """One core's next-block predictor."""

    def __init__(self, local_l1: int = 64, local_l2: int = 128,
                 global_entries: int = 512, choice_entries: int = 512,
                 btype_entries: int = 256, btb_entries: int = 128,
                 ctb_entries: int = 16, latency: int = 3) -> None:
        self.exits = ExitPredictor(local_l1, local_l2, global_entries, choice_entries)
        self.targets = TargetPredictor(btype_entries, btb_entries, ctb_entries)
        self.latency = latency

    def predict(self, block_addr: int, global_history: int,
                ras: DistributedRas) -> Prediction:
        """Predict the next block after ``block_addr``.

        Speculatively updates local history and the RAS; the returned
        checkpoint undoes both if the block is squashed."""
        block_num = block_addr // BLOCK_STRIDE
        exit_prediction = self.exits.predict(block_num, global_history)
        kind, target = self.targets.predict(block_addr, exit_prediction.exit_id)

        ras_checkpoint = None
        ras_core = None
        if kind is BranchKind.CALL:
            ras_checkpoint = ras.push(block_addr + BLOCK_STRIDE)
            ras_core = ras.top_core
        elif kind is BranchKind.RETURN:
            target, ras_checkpoint = ras.pop()
            ras_core = ras.top_core

        return Prediction(
            block_addr=block_addr,
            exit_id=exit_prediction.exit_id,
            kind=kind,
            next_addr=target,
            next_global_history=push_history(
                global_history, exit_prediction.exit_id, GLOBAL_HISTORY_EXITS),
            checkpoint=PredictorCheckpoint(exit_prediction, ras_checkpoint),
            ras_core=ras_core,
        )

    def update(self, prediction: Prediction, actual_exit: int,
               actual_kind: BranchKind, actual_target: int) -> None:
        """Train with the resolved block (called at commit)."""
        block_num = prediction.block_addr // BLOCK_STRIDE
        self.exits.update(block_num, prediction.checkpoint.exit_prediction, actual_exit)
        self.targets.update(prediction.block_addr, actual_exit, actual_kind, actual_target)

    def repair(self, prediction: Prediction, ras: DistributedRas,
               actual_exit: Optional[int] = None) -> None:
        """Undo this prediction's speculative state (flush, youngest-first)."""
        self.exits.repair(prediction.checkpoint.exit_prediction, actual_exit)
        if prediction.checkpoint.ras_checkpoint is not None:
            ras.restore(prediction.checkpoint.ras_checkpoint)

    def state_dict(self) -> dict:
        """JSON-safe snapshot of both table sets (stats excluded)."""
        return {"exits": self.exits.state_dict(),
                "targets": self.targets.state_dict()}

    def load_state(self, state: dict) -> None:
        """Replace all table contents with a :meth:`state_dict` snapshot."""
        self.exits.load_state(state["exits"])
        self.targets.load_state(state["targets"])
