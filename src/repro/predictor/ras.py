"""The distributed return address stack (paper section 4.3).

The RAS is the hardest predictor structure to distribute because it
represents the program call stack — a single logical object.  TFlex
*sequentially partitions* the stack across participating cores: with
two cores and 16 entries each, entries 0..15 live on core 0 and entries
16..31 on core 1.  Pushes and pops are messages to the core holding the
current top; composition therefore deepens the stack linearly.

Mispredicted blocks roll back the RAS from per-prediction checkpoints
(top pointer plus the entry a push overwrote), restored youngest-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class RasCheckpoint:
    """State needed to undo at most one push or pop."""

    top: int
    overwritten_slot: Optional[int] = None
    overwritten_value: int = 0


@dataclass
class RasStats:
    pushes: int = 0
    pops: int = 0
    underflows: int = 0
    overflow_wraps: int = 0


class DistributedRas:
    """One logical stack sequentially partitioned across cores."""

    def __init__(self, num_cores: int, entries_per_core: int = 16) -> None:
        self.num_cores = num_cores
        self.entries_per_core = entries_per_core
        self.capacity = num_cores * entries_per_core
        self._stack = [0] * self.capacity
        self._top = 0          # number of live entries (next free slot)
        self.stats = RasStats()  # lint: ok(REP101) history, not warm state — stats stay with their owner across swaps

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def core_of_slot(self, slot: int) -> int:
        """Participating-core index holding a stack slot."""
        return (slot % self.capacity) // self.entries_per_core

    @property
    def top_core(self) -> int:
        """Core holding the current top entry (message destination)."""
        if self._top == 0:
            return 0
        return self.core_of_slot((self._top - 1) % self.capacity)

    @property
    def depth(self) -> int:
        return self._top

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def checkpoint(self) -> RasCheckpoint:
        return RasCheckpoint(top=self._top)

    def push(self, value: int) -> RasCheckpoint:
        """Push a return address; returns the undo checkpoint."""
        slot = self._top % self.capacity
        checkpoint = RasCheckpoint(
            top=self._top,
            overwritten_slot=slot,
            overwritten_value=self._stack[slot],
        )
        if self._top >= self.capacity:
            self.stats.overflow_wraps += 1
        self._stack[slot] = value
        self._top += 1
        self.stats.pushes += 1
        return checkpoint

    def pop(self) -> tuple[int, RasCheckpoint]:
        """Pop the predicted return address; returns (value, checkpoint)."""
        checkpoint = RasCheckpoint(top=self._top)
        if self._top == 0:
            self.stats.underflows += 1
            return 0, checkpoint
        self._top -= 1
        self.stats.pops += 1
        return self._stack[self._top % self.capacity], checkpoint

    def restore(self, checkpoint: RasCheckpoint) -> None:
        """Undo one push/pop (applied youngest-first during a flush)."""
        self._top = checkpoint.top
        if checkpoint.overwritten_slot is not None:
            self._stack[checkpoint.overwritten_slot] = checkpoint.overwritten_value

    # ------------------------------------------------------------------
    # State transfer (sampled-simulation warm-up injection, checkpoints)
    # ------------------------------------------------------------------

    def swap_state(self, other: "DistributedRas") -> None:
        """Exchange stack contents with a same-capacity RAS in O(1).

        The sampled engine moves warm state between the shadow and a
        per-window system whose post-window state is never read again,
        so an exchange is observably identical to a copy and allocates
        nothing.  Stats stay with their owner, as in ``load_state``.
        """
        if other.capacity != self.capacity:
            raise ValueError("RAS swap capacity mismatch")
        self._stack, other._stack = other._stack, self._stack
        self._top, other._top = other._top, self._top

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the stack contents (stats excluded)."""
        return {"stack": list(self._stack), "top": self._top}

    def load_state(self, state: dict) -> None:
        """Replace stack contents with a :meth:`state_dict` snapshot
        (the capacity must match)."""
        if len(state["stack"]) != self.capacity:
            raise ValueError("RAS snapshot capacity mismatch")
        self._stack = list(state["stack"])
        self._top = int(state["top"])
