"""Next-block target prediction: Btype, BTB, CTB, and sequential adder.

Given a predicted exit, the target predictor first predicts the *type*
of the exit branch — sequential, regular branch, call, or return — with
the Btype table, then selects the target from the matching provider:
the next-block adder (SEQ), the branch target buffer, the call target
buffer, or the return address stack (owned by the caller; this module
only reports that a return was predicted).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.isa.program import BLOCK_STRIDE


class BranchKind(Enum):
    """Exit branch type predicted by the Btype table."""

    SEQ = 0       # fall through to the sequential next block
    BRANCH = 1    # regular branch (BTB target)
    CALL = 2      # call (CTB target, pushes RAS)
    RETURN = 3    # return (RAS target)

    @staticmethod
    def of_opcode(name: str) -> "BranchKind":
        if name == "CALLO":
            return BranchKind.CALL
        if name == "RET":
            return BranchKind.RETURN
        return BranchKind.BRANCH


@dataclass
class _TaggedTarget:
    key: int = -1
    target: int = 0


@dataclass
class TargetStats:
    predictions: int = 0
    btype_correct: int = 0
    btb_hits: int = 0
    ctb_hits: int = 0


class TargetPredictor:
    """One core's target-prediction tables."""

    def __init__(self, btype_entries: int = 256, btb_entries: int = 128,
                 ctb_entries: int = 16) -> None:
        self._btype = [BranchKind.SEQ] * btype_entries
        self._btb = [_TaggedTarget() for __ in range(btb_entries)]
        self._ctb = [_TaggedTarget() for __ in range(ctb_entries)]
        self.stats = TargetStats()  # lint: ok(REP101) history, not warm state — stats stay with their owner across swaps

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    @staticmethod
    def _key(block_num: int, exit_id: int) -> int:
        return block_num * 8 + exit_id

    def _btype_index(self, block_num: int, exit_id: int) -> int:
        return self._key(block_num, exit_id) % len(self._btype)

    def _btb_index(self, block_num: int, exit_id: int) -> int:
        return self._key(block_num, exit_id) % len(self._btb)

    def _ctb_index(self, block_num: int, exit_id: int) -> int:
        return self._key(block_num, exit_id) % len(self._ctb)

    # ------------------------------------------------------------------
    # Predict
    # ------------------------------------------------------------------

    def predict(self, block_addr: int, exit_id: int) -> tuple[BranchKind, Optional[int]]:
        """Predict (branch kind, target address).

        The target is None for RETURN (the RAS provides it) and for
        BTB/CTB key mismatches, where the sequential next block is the
        fallback."""
        self.stats.predictions += 1
        block_num = block_addr // BLOCK_STRIDE
        kind = self._btype[self._btype_index(block_num, exit_id)]
        key = self._key(block_num, exit_id)

        if kind is BranchKind.SEQ:
            return kind, block_addr + BLOCK_STRIDE
        if kind is BranchKind.RETURN:
            return kind, None
        table = self._btb if kind is BranchKind.BRANCH else self._ctb
        index = (self._btb_index if kind is BranchKind.BRANCH else self._ctb_index)(
            block_num, exit_id)
        entry = table[index]
        if entry.key == key:
            if kind is BranchKind.BRANCH:
                self.stats.btb_hits += 1
            else:
                self.stats.ctb_hits += 1
            return kind, entry.target
        return kind, block_addr + BLOCK_STRIDE

    # ------------------------------------------------------------------
    # Resolve
    # ------------------------------------------------------------------

    def update(self, block_addr: int, exit_id: int, actual_kind: BranchKind,
               actual_target: int) -> None:
        """Train with the resolved exit branch of a committed block."""
        block_num = block_addr // BLOCK_STRIDE
        key = self._key(block_num, exit_id)
        predicted_kind = self._btype[self._btype_index(block_num, exit_id)]
        if predicted_kind is actual_kind:
            self.stats.btype_correct += 1

        kind = actual_kind
        if kind is BranchKind.BRANCH and actual_target == block_addr + BLOCK_STRIDE:
            kind = BranchKind.SEQ    # sequential branches train as SEQ
        self._btype[self._btype_index(block_num, exit_id)] = kind

        if kind is BranchKind.BRANCH:
            entry = self._btb[self._btb_index(block_num, exit_id)]
            entry.key, entry.target = key, actual_target
        elif kind is BranchKind.CALL:
            entry = self._ctb[self._ctb_index(block_num, exit_id)]
            entry.key, entry.target = key, actual_target

    # ------------------------------------------------------------------
    # State transfer (sampled-simulation warm-up injection, checkpoints)
    # ------------------------------------------------------------------

    def swap_state(self, other: "TargetPredictor") -> None:
        """Exchange table contents with a same-geometry predictor in
        O(1) — see :meth:`DistributedRas.swap_state` for why the
        sampled engine may exchange instead of copy."""
        if len(other._btype) != len(self._btype) \
                or len(other._btb) != len(self._btb) \
                or len(other._ctb) != len(self._ctb):
            raise ValueError("target-predictor swap geometry mismatch")
        self._btype, other._btype = other._btype, self._btype
        self._btb, other._btb = other._btb, self._btb
        self._ctb, other._ctb = other._ctb, self._ctb

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the table contents (stats excluded)."""
        return {
            "btype": [kind.value for kind in self._btype],
            "btb": [[e.key, e.target] for e in self._btb],
            "ctb": [[e.key, e.target] for e in self._ctb],
        }

    def load_state(self, state: dict) -> None:
        """Replace table contents with a :meth:`state_dict` snapshot
        (the geometries must match)."""
        if len(state["btype"]) != len(self._btype) \
                or len(state["btb"]) != len(self._btb) \
                or len(state["ctb"]) != len(self._ctb):
            raise ValueError("target-predictor snapshot geometry mismatch")
        self._btype = [BranchKind(v) for v in state["btype"]]
        self._btb = [_TaggedTarget(k, t) for k, t in state["btb"]]
        self._ctb = [_TaggedTarget(k, t) for k, t in state["ctb"]]
