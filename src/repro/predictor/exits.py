"""Tournament exit predictor over 3-bit block-exit histories.

TFlex predicts *which exit* leaves a 128-instruction hyperblock rather
than taken/not-taken per branch: each block executes exactly one of up
to eight exits, identified by the 3-bit exit field of its branch
instructions.  Histories are therefore sequences of 3-bit exit IDs, not
single bits (paper section 4.3).

The predictor is an Alpha 21264-style hybrid: a two-level local
component (per-block-address history table indexing a pattern table), a
global component indexed by the forwarded global exit history, and a
choice table picking between them.  Pattern entries hold an exit value
with a saturating confidence counter (the multi-valued analogue of a
two-bit counter).  Local histories are updated speculatively at predict
time and repaired from checkpoints on a flush.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.block import NUM_EXITS


EXIT_BITS = 3
EXIT_MASK = (1 << EXIT_BITS) - 1

#: Exits of local history kept (64-entry L1 table stores this many).
LOCAL_HISTORY_EXITS = 4
#: Exits of global history used for indexing.
GLOBAL_HISTORY_EXITS = 4

_CONF_MAX = 3


def push_history(history: int, exit_id: int, num_exits: int) -> int:
    """Shift a 3-bit exit into an exit-history register."""
    mask = (1 << (EXIT_BITS * num_exits)) - 1
    return ((history << EXIT_BITS) | (exit_id & EXIT_MASK)) & mask


@dataclass
class _PatternEntry:
    """Predicted exit with hysteresis."""

    exit_id: int = 0
    confidence: int = 0

    def update(self, actual: int) -> None:
        if self.exit_id == actual:
            if self.confidence < _CONF_MAX:
                self.confidence += 1
        elif self.confidence > 0:
            self.confidence -= 1
        else:
            self.exit_id = actual
            self.confidence = 1


@dataclass
class ExitPrediction:
    """One exit prediction and the state needed to update/repair it."""

    exit_id: int
    local_exit: int
    global_exit: int
    used_global: bool
    local_index: int           # L1 history table entry updated speculatively
    old_local_history: int     # value to restore on flush
    global_history: int        # history *before* this prediction


@dataclass
class ExitStats:
    predictions: int = 0
    local_correct: int = 0
    global_correct: int = 0
    correct: int = 0


class ExitPredictor:
    """Local/global/choice tournament over block exits (one core's bank)."""

    def __init__(self, local_l1: int = 64, local_l2: int = 128,
                 global_entries: int = 512, choice_entries: int = 512) -> None:
        self._local_hist = [0] * local_l1
        self._local_pattern = [_PatternEntry() for __ in range(local_l2)]
        self._global_pattern = [_PatternEntry() for __ in range(global_entries)]
        # Choice: 0..1 prefer local, 2..3 prefer global.
        self._choice = [1] * choice_entries
        self.stats = ExitStats()  # lint: ok(REP101) history, not warm state — stats stay with their owner across swaps

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _local_l1_index(self, block_num: int) -> int:
        return block_num % len(self._local_hist)

    def _local_l2_index(self, local_history: int) -> int:
        return local_history % len(self._local_pattern)

    def _global_index(self, block_num: int, ghist: int) -> int:
        return (ghist ^ block_num) % len(self._global_pattern)

    def _choice_index(self, block_num: int, ghist: int) -> int:
        return (ghist ^ (block_num * 7)) % len(self._choice)

    # ------------------------------------------------------------------
    # Predict (speculative history update)
    # ------------------------------------------------------------------

    def predict(self, block_num: int, global_history: int) -> ExitPrediction:
        """Predict the exit of a block; speculatively pushes the
        prediction into the block's local history."""
        self.stats.predictions += 1
        l1 = self._local_l1_index(block_num)
        local_history = self._local_hist[l1]
        local_exit = self._local_pattern[self._local_l2_index(local_history)].exit_id
        global_exit = self._global_pattern[
            self._global_index(block_num, global_history)].exit_id
        use_global = self._choice[self._choice_index(block_num, global_history)] >= 2
        exit_id = global_exit if use_global else local_exit

        self._local_hist[l1] = push_history(local_history, exit_id, LOCAL_HISTORY_EXITS)
        return ExitPrediction(
            exit_id=exit_id,
            local_exit=local_exit,
            global_exit=global_exit,
            used_global=use_global,
            local_index=l1,
            old_local_history=local_history,
            global_history=global_history,
        )

    # ------------------------------------------------------------------
    # Resolve
    # ------------------------------------------------------------------

    def update(self, block_num: int, prediction: ExitPrediction, actual_exit: int) -> None:
        """Train pattern and choice tables with the resolved exit.

        Called at block commit, with the histories captured at predict
        time (so wrong-path speculation does not pollute training)."""
        local_ok = prediction.local_exit == actual_exit
        global_ok = prediction.global_exit == actual_exit
        if local_ok:
            self.stats.local_correct += 1
        if global_ok:
            self.stats.global_correct += 1
        if prediction.exit_id == actual_exit:
            self.stats.correct += 1

        self._local_pattern[
            self._local_l2_index(prediction.old_local_history)].update(actual_exit)
        self._global_pattern[
            self._global_index(block_num, prediction.global_history)].update(actual_exit)

        if local_ok != global_ok:
            index = self._choice_index(block_num, prediction.global_history)
            if global_ok:
                self._choice[index] = min(3, self._choice[index] + 1)
            else:
                self._choice[index] = max(0, self._choice[index] - 1)

    def repair(self, prediction: ExitPrediction, actual_exit: int | None = None) -> None:
        """Undo this prediction's speculative local-history update.

        If the true exit is known (the block itself mispredicted rather
        than being squashed wholesale), the corrected exit is pushed
        instead."""
        restored = prediction.old_local_history
        if actual_exit is not None:
            restored = push_history(restored, actual_exit, LOCAL_HISTORY_EXITS)
        self._local_hist[prediction.local_index] = restored

    @property
    def accuracy(self) -> float:
        if self.stats.predictions == 0:
            return 0.0
        return self.stats.correct / self.stats.predictions

    # ------------------------------------------------------------------
    # State transfer (sampled-simulation warm-up injection, checkpoints)
    # ------------------------------------------------------------------

    def swap_state(self, other: "ExitPredictor") -> None:
        """Exchange table contents with a same-geometry predictor in
        O(1) — see :meth:`DistributedRas.swap_state` for why the
        sampled engine may exchange instead of copy."""
        if len(other._local_hist) != len(self._local_hist) \
                or len(other._local_pattern) != len(self._local_pattern) \
                or len(other._global_pattern) != len(self._global_pattern) \
                or len(other._choice) != len(self._choice):
            raise ValueError("exit-predictor swap geometry mismatch")
        self._local_hist, other._local_hist = \
            other._local_hist, self._local_hist
        self._local_pattern, other._local_pattern = \
            other._local_pattern, self._local_pattern
        self._global_pattern, other._global_pattern = \
            other._global_pattern, self._global_pattern
        self._choice, other._choice = other._choice, self._choice

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the table contents (stats excluded)."""
        return {
            "local_hist": list(self._local_hist),
            "local_pattern": [[e.exit_id, e.confidence]
                              for e in self._local_pattern],
            "global_pattern": [[e.exit_id, e.confidence]
                               for e in self._global_pattern],
            "choice": list(self._choice),
        }

    def load_state(self, state: dict) -> None:
        """Replace table contents with a :meth:`state_dict` snapshot
        (the geometries must match)."""
        if len(state["local_hist"]) != len(self._local_hist) \
                or len(state["local_pattern"]) != len(self._local_pattern) \
                or len(state["global_pattern"]) != len(self._global_pattern) \
                or len(state["choice"]) != len(self._choice):
            raise ValueError("exit-predictor snapshot geometry mismatch")
        self._local_hist = list(state["local_hist"])
        self._local_pattern = [_PatternEntry(e, c)
                               for e, c in state["local_pattern"]]
        self._global_pattern = [_PatternEntry(e, c)
                                for e, c in state["global_pattern"]]
        self._choice = list(state["choice"])
