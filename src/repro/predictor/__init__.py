"""Distributed next-block prediction (paper section 4.3).

Each core carries a complete predictor bank; a block is always predicted
at its owner core (block-address hash), so predictor capacity scales
with composition size.  Global exit history is forwarded from owner to
owner along with the predicted next-block address; the return address
stack is a single logical stack sequentially partitioned across cores.
"""

from repro.predictor.exits import ExitPredictor, ExitPrediction
from repro.predictor.targets import TargetPredictor, BranchKind
from repro.predictor.ras import DistributedRas, RasCheckpoint
from repro.predictor.bank import PredictorBank, Prediction, PredictorCheckpoint

__all__ = [
    "ExitPredictor",
    "ExitPrediction",
    "TargetPredictor",
    "BranchKind",
    "DistributedRas",
    "RasCheckpoint",
    "PredictorBank",
    "Prediction",
    "PredictorCheckpoint",
]
